package cache

import (
	"eccspec/internal/sram"
	"eccspec/internal/variation"
)

// HierarchyConfig describes a core's private cache geometry plus the
// shared L3, following Table I of the paper (Itanium 9560).
type HierarchyConfig struct {
	L1I Config
	L1D Config
	L2I Config
	L2D Config
	L3  Config
	// MemLatency is the off-chip access cost in cycles.
	MemLatency int
}

// ItaniumConfig returns the full Table I geometry:
// 4-way 16KB L1I/L1D (1 cycle), 8-way 512KB L2I and 8-way 256KB L2D
// (9 cycles), 32-way 32MB shared L3 (15 cycles).
func ItaniumConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:        Config{Name: "L1I", Kind: variation.KindL1I, Sets: 64, Ways: 4, HitLatency: 1},
		L1D:        Config{Name: "L1D", Kind: variation.KindL1D, Sets: 64, Ways: 4, HitLatency: 1},
		L2I:        Config{Name: "L2I", Kind: variation.KindL2I, Sets: 1024, Ways: 8, HitLatency: 9},
		L2D:        Config{Name: "L2D", Kind: variation.KindL2D, Sets: 512, Ways: 8, HitLatency: 9},
		L3:         Config{Name: "L3", Kind: variation.KindL3, Sets: 16384, Ways: 32, HitLatency: 15},
		MemLatency: 180,
	}
}

// ScaledConfig returns a 1/8-capacity geometry that preserves
// associativity and relative sizes. Experiments default to this scale:
// weak-cell statistics shift by well under one sigma (extreme values grow
// with sqrt(2 ln N)) while characterization sweeps run ~8x faster. The
// CLI's -full flag selects ItaniumConfig instead.
func ScaledConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:        Config{Name: "L1I", Kind: variation.KindL1I, Sets: 8, Ways: 4, HitLatency: 1},
		L1D:        Config{Name: "L1D", Kind: variation.KindL1D, Sets: 8, Ways: 4, HitLatency: 1},
		L2I:        Config{Name: "L2I", Kind: variation.KindL2I, Sets: 128, Ways: 8, HitLatency: 9},
		L2D:        Config{Name: "L2D", Kind: variation.KindL2D, Sets: 64, Ways: 8, HitLatency: 9},
		L3:         Config{Name: "L3", Kind: variation.KindL3, Sets: 2048, Ways: 32, HitLatency: 15},
		MemLatency: 180,
	}
}

// AccessResult aggregates the outcome of one hierarchy access.
type AccessResult struct {
	// Level is the name of the cache that served the access ("L1D",
	// "L2D", "L3", or "Mem").
	Level string
	// Latency is the total access cost in cycles.
	Latency int
	// Events lists every ECC event raised along the path.
	Events []Event
	// Fatal is true when any level suffered an uncorrectable error.
	Fatal bool
}

// Hierarchy is one core's view of the cache system: private L1/L2 pairs
// for instructions and data, plus the shared L3.
type Hierarchy struct {
	Core int
	L1I  *Cache
	L1D  *Cache
	L2I  *Cache
	L2D  *Cache
	L3   *Cache // shared; may be nil in reduced test setups
	cfg  HierarchyConfig
}

// NewHierarchy builds a core's private caches against the chip variation
// model. The shared L3 is passed in (one per chip); it may be nil, in
// which case L2 misses go straight to memory.
func NewHierarchy(cfg HierarchyConfig, core int, m *variation.Model, l3 *Cache) *Hierarchy {
	return &Hierarchy{
		Core: core,
		L1I:  New(cfg.L1I, core, m),
		L1D:  New(cfg.L1D, core, m),
		L2I:  New(cfg.L2I, core, m),
		L2D:  New(cfg.L2D, core, m),
		L3:   l3,
		cfg:  cfg,
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// accessPath runs an access through an L1/L2 pair and the shared L3.
func (h *Hierarchy) accessPath(l1, l2 *Cache, addr uint64, v float64) AccessResult {
	var out AccessResult
	if res, hit := l1.Access(addr, v); hit {
		out.Level = l1.cfg.Name
		out.Latency = l1.cfg.HitLatency
		out.Events = append(out.Events, res.Events...)
		out.Fatal = res.Fatal
		return out
	}
	out.Latency = l1.cfg.HitLatency
	if res, hit := l2.Access(addr, v); hit {
		out.Level = l2.cfg.Name
		out.Latency += l2.cfg.HitLatency
		out.Events = append(out.Events, res.Events...)
		out.Fatal = res.Fatal
		l1.Fill(addr)
		return out
	}
	out.Latency += l2.cfg.HitLatency
	if h.L3 != nil {
		if res, hit := h.L3.Access(addr, v); hit {
			out.Level = h.L3.cfg.Name
			out.Latency += h.L3.cfg.HitLatency
			out.Events = append(out.Events, res.Events...)
			out.Fatal = res.Fatal
			l2.Fill(addr)
			l1.Fill(addr)
			return out
		}
		out.Latency += h.L3.cfg.HitLatency
		h.L3.Fill(addr)
	}
	out.Level = "Mem"
	out.Latency += h.cfg.MemLatency
	l2.Fill(addr)
	l1.Fill(addr)
	return out
}

// AccessData performs a data access at effective voltage v.
func (h *Hierarchy) AccessData(addr uint64, v float64) AccessResult {
	return h.accessPath(h.L1D, h.L2D, addr, v)
}

// AccessInstr performs an instruction fetch at effective voltage v.
func (h *Hierarchy) AccessInstr(addr uint64, v float64) AccessResult {
	return h.accessPath(h.L1I, h.L2I, addr, v)
}

// TargetedL2Test exercises one specific L2 line from software, using the
// paper's Fig. 7 routine. Firmware cannot address an L2 way directly, so
// it:
//
//  1. fetches 8 lines that map to the victim's L2 set, populating every
//     way (which of the 8 lands in the victim way depends on LRU state);
//  2. evicts the matching L1 set by fetching L1-conflicting lines whose
//     L2 sets differ (possible because the L2 is a size multiple of the
//     L1, so extra index bits exist);
//  3. re-accesses the original 8 lines, which now miss the L1 and hit
//     the L2 — touching the victim line.
//
// It returns every ECC event observed during step 3, which by
// construction includes any events from the targeted line. data selects
// the data-side (L1D/L2D) or instruction-side path.
func (h *Hierarchy) TargetedL2Test(l2set int, data bool, v float64) ([]Event, bool) {
	l1, l2 := h.L1I, h.L2I
	access := h.AccessInstr
	if data {
		l1, l2 = h.L1D, h.L2D
		access = h.AccessData
	}
	lineSize := uint64(sram.LineBytes)
	l2Stride := uint64(l2.cfg.Sets) * lineSize
	l1Stride := uint64(l1.cfg.Sets) * lineSize

	// Step 1: load one address per L2 way for the victim set.
	base := uint64(l2set) * lineSize
	var fatal bool
	for i := 0; i < l2.cfg.Ways; i++ {
		r := access(base+uint64(i)*l2Stride, v)
		fatal = fatal || r.Fatal
	}
	// Step 2: evict the L1 set these lines occupy. Addresses keep the
	// L1 index bits but change the higher L2 index bits (offset by
	// l1Stride keeps the L1 set only if l1Stride doesn't change it —
	// it doesn't, by definition — while moving the L2 set as long as
	// the stride is not also a multiple of the L2 span).
	evict := base + 1*l1Stride
	for i := 0; i < l1.cfg.Ways; i++ {
		// Skip evict addresses that land back in the victim L2 set.
		for l2.SetIndex(evict) == l2set {
			evict += l1Stride
		}
		r := access(evict, v)
		fatal = fatal || r.Fatal
		evict += l2Stride // vary the tag while preserving the L1 set
	}
	// Step 3: re-access the original lines; they hit in L2 now.
	var events []Event
	for i := 0; i < l2.cfg.Ways; i++ {
		r := access(base+uint64(i)*l2Stride, v)
		events = append(events, r.Events...)
		fatal = fatal || r.Fatal
	}
	return events, fatal
}
