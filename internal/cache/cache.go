// Package cache implements the simulated cache hierarchy: set-associative
// write-back caches whose stored words are protected by SECDED ECC
// (internal/ecc) and whose bit cells fail per the SRAM fault model
// (internal/sram).
//
// Reads are the only faulting operation. On every line read the SRAM
// model samples which (if any) weak cells flip at the current effective
// voltage; the flips are injected into a transient copy of the stored
// codewords and each word is decoded. A single flipped bit per word is
// corrected and surfaces as a benign correctable-error Event — the
// feedback signal the voltage speculation system consumes. Two flips in
// one word are an uncorrectable error, which the chip treats as fatal.
// Flips are transient (access faults, not retention faults): stored data
// is unaffected, matching the paper's §V-E characterization.
//
// Caches support de-configuring individual lines. Calibration removes the
// designated weak line from normal allocation so it can be dedicated to
// the ECC monitor's continuous self-test.
package cache

import (
	"fmt"

	"eccspec/internal/ecc"
	"eccspec/internal/rng"
	"eccspec/internal/sram"
	"eccspec/internal/variation"
)

// Config describes one cache's geometry.
type Config struct {
	// Name is the structure label ("L1I", "L2D", ...) used in events.
	Name string
	// Kind selects the variation class of the array's cells.
	Kind variation.Kind
	// Sets and Ways define the geometry; line size is fixed at 64 B.
	Sets int
	Ways int
	// HitLatency is the access time in cycles (Table I).
	HitLatency int
}

// SizeBytes returns the cache capacity in bytes.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * sram.LineBytes }

// Event records one ECC event observed during a line read.
type Event struct {
	// Cache is the structure name the event occurred in.
	Cache string
	// Core is the owning core id (-1 for shared structures).
	Core int
	// Set, Way locate the line; Word is the 0..7 codeword index.
	Set, Way, Word int
	// Status is Corrected or Uncorrectable (Clean reads produce no
	// event).
	Status ecc.Status
	// BitPos is the corrected codeword bit position, -1 if unknown.
	BitPos int
}

// String renders the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("%s core%d set%d way%d word%d: %s",
		e.Cache, e.Core, e.Set, e.Way, e.Word, e.Status)
}

// Stats accumulates cache activity counters.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Fills         uint64
	Corrected     uint64
	Uncorrectable uint64
}

// line is one cache line's storage and bookkeeping.
type line struct {
	tag      uint64
	valid    bool
	disabled bool
	lastUse  uint64
	words    [sram.WordsPerLine]ecc.Codeword
}

// Cache is one set-associative, ECC-protected cache backed by a faulty
// SRAM array.
type Cache struct {
	cfg   Config
	core  int
	arr   *sram.Array
	lines []line
	clock uint64
	stats Stats

	// events is ReadLine's scratch, reused so steady-state monitor
	// probing allocates nothing.
	events []Event
}

// New constructs a cache for the given core (use -1 for shared caches)
// backed by the chip's variation model.
func New(cfg Config, core int, m *variation.Model) *Cache {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic("cache: non-positive geometry")
	}
	arrCore := core
	if core < 0 {
		// Shared structures get a synthetic coordinate outside the
		// core id space so their variation draws are independent.
		arrCore = 0x1000 + int(cfg.Kind)
	}
	return &Cache{
		cfg:   cfg,
		core:  core,
		arr:   sram.NewArray(m, arrCore, cfg.Kind, cfg.Sets, cfg.Ways),
		lines: make([]line, cfg.Sets*cfg.Ways),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Array exposes the underlying SRAM fault model (used by calibration
// ground-truth checks and characterization experiments).
func (c *Cache) Array() *sram.Array { return c.arr }

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the activity counters.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// SetIndex returns the set an address maps to.
func (c *Cache) SetIndex(addr uint64) int {
	return int((addr / sram.LineBytes) % uint64(c.cfg.Sets))
}

// tagOf returns the tag for an address.
func (c *Cache) tagOf(addr uint64) uint64 {
	return addr / sram.LineBytes / uint64(c.cfg.Sets)
}

// lineAt returns the line storage at (set, way).
func (c *Cache) lineAt(set, way int) *line {
	return &c.lines[set*c.cfg.Ways+way]
}

// Lookup reports whether addr is resident and in which way.
func (c *Cache) Lookup(addr uint64) (way int, hit bool) {
	set := c.SetIndex(addr)
	tag := c.tagOf(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		ln := c.lineAt(set, w)
		if ln.valid && !ln.disabled && ln.tag == tag {
			return w, true
		}
	}
	return -1, false
}

// patternFor derives the canonical fill pattern for an address: workload
// accesses don't carry real program data, so lines are filled with a
// reproducible address-derived pattern that lets tests verify end-to-end
// data integrity through fills, evictions, faults, and ECC correction.
func patternFor(addr uint64, word int) uint64 {
	return rng.Hash(0xDA7A, addr/sram.LineBytes, uint64(word))
}

// PatternFor exposes the canonical fill pattern (tests and self-checks).
func PatternFor(addr uint64, word int) uint64 { return patternFor(addr, word) }

// Fill ensures addr is resident: if it already is, the line is only
// touched; otherwise a line is allocated with the canonical pattern,
// evicting the least recently used non-disabled way. It returns the way
// used. Fill panics if every way in the set is disabled — the
// calibration protocol de-configures at most one line per cache.
func (c *Cache) Fill(addr uint64) int {
	set := c.SetIndex(addr)
	if way, hit := c.Lookup(addr); hit {
		c.clock++
		c.lineAt(set, way).lastUse = c.clock
		return way
	}
	victim := -1
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.cfg.Ways; w++ {
		ln := c.lineAt(set, w)
		if ln.disabled {
			continue
		}
		if !ln.valid {
			victim = w
			break
		}
		if ln.lastUse < oldest {
			oldest = ln.lastUse
			victim = w
		}
	}
	if victim < 0 {
		panic("cache: all ways disabled in set")
	}
	ln := c.lineAt(set, victim)
	ln.tag = c.tagOf(addr)
	ln.valid = true
	c.clock++
	ln.lastUse = c.clock
	for w := 0; w < sram.WordsPerLine; w++ {
		ln.words[w] = ecc.Encode(patternFor(addr, w))
	}
	c.stats.Fills++
	return victim
}

// WriteLine stores data words into a physical line (set, way), marking it
// valid with the given tag address. Writes are modelled as always clean:
// the paper's write paths complete correctly at the voltages under study
// (§V-E writes its test patterns at a raised voltage to guarantee this).
func (c *Cache) WriteLine(set, way int, data [sram.WordsPerLine]uint64) {
	ln := c.lineAt(set, way)
	// Encode is pure, and the dominant caller (the ECC monitor) writes
	// the same test pattern into every word of the line, so reuse the
	// previous word's codeword when the data repeats.
	for w := 0; w < sram.WordsPerLine; w++ {
		if w > 0 && data[w] == data[w-1] {
			ln.words[w] = ln.words[w-1]
			continue
		}
		ln.words[w] = ecc.Encode(data[w])
	}
	ln.valid = true
	c.clock++
	ln.lastUse = c.clock
}

// WriteLineEncoded stores a pre-encoded line image with the same
// bookkeeping as WriteLine. The ECC monitor rotates through a handful
// of fixed test patterns every probe cycle; encoding each pattern once
// and replaying the images keeps SECDED encoding off the probe train.
func (c *Cache) WriteLineEncoded(set, way int, words *[sram.WordsPerLine]ecc.Codeword) {
	ln := c.lineAt(set, way)
	ln.words = *words
	ln.valid = true
	c.clock++
	ln.lastUse = c.clock
}

// ReadResult reports the outcome of a physical line read.
type ReadResult struct {
	// Data is the decoded line contents (corrected where possible).
	Data [sram.WordsPerLine]uint64
	// Events lists the ECC events raised by this read. The slice is
	// scratch owned by the cache and is overwritten by its next
	// ReadLine; callers that need events beyond the current read must
	// copy them.
	Events []Event
	// Fatal is true when any word suffered an uncorrectable error.
	Fatal bool
}

// ReadLine performs a physical read of line (set, way) at effective
// voltage v: weak cells may flip transiently, and each codeword is pushed
// through the SECDED decoder. This is the privileged access path used by
// the hardware ECC monitor as well as the internal step of every
// address-based access.
func (c *Cache) ReadLine(set, way int, v float64) ReadResult {
	ln := c.lineAt(set, way)
	c.clock++
	ln.lastUse = c.clock
	var res ReadResult
	flips := c.arr.SampleFlips(set, way, v)
	// Fast path: clean read.
	if len(flips) == 0 {
		for w := 0; w < sram.WordsPerLine; w++ {
			res.Data[w] = ecc.ExtractData(ln.words[w])
		}
		return res
	}
	// Inject the transient flips into per-word copies and decode.
	res.Events = c.events[:0]
	var corrupted [sram.WordsPerLine]ecc.Codeword
	copy(corrupted[:], ln.words[:])
	for _, pos := range flips {
		corrupted[pos/ecc.CodewordBits].FlipBit(pos % ecc.CodewordBits)
	}
	for w := 0; w < sram.WordsPerLine; w++ {
		if corrupted[w] == ln.words[w] {
			res.Data[w] = ecc.ExtractData(ln.words[w])
			continue
		}
		data, st, bit := ecc.Decode(corrupted[w])
		res.Data[w] = data
		ev := Event{Cache: c.cfg.Name, Core: c.core, Set: set, Way: way,
			Word: w, Status: st, BitPos: bit}
		switch st {
		case ecc.Corrected:
			c.stats.Corrected++
			res.Events = append(res.Events, ev)
		case ecc.Uncorrectable:
			c.stats.Uncorrectable++
			res.Events = append(res.Events, ev)
			res.Fatal = true
		}
	}
	c.events = res.Events
	return res
}

// ProbeLine is ReadLine for callers that consume only the ECC outcome
// and not the data — the hardware monitor's continuous self-test. Fault
// sampling, decoding, event generation, and counter updates are
// identical to ReadLine; the decoded words are simply not materialized,
// which keeps the per-tick probe train off the hot path's profile.
func (c *Cache) ProbeLine(set, way int, v float64) ReadResult {
	ln := c.lineAt(set, way)
	c.clock++
	ln.lastUse = c.clock
	var res ReadResult
	flips := c.arr.SampleFlips(set, way, v)
	if len(flips) == 0 {
		return res
	}
	res.Events = c.events[:0]
	var corrupted [sram.WordsPerLine]ecc.Codeword
	copy(corrupted[:], ln.words[:])
	for _, pos := range flips {
		corrupted[pos/ecc.CodewordBits].FlipBit(pos % ecc.CodewordBits)
	}
	for w := 0; w < sram.WordsPerLine; w++ {
		if corrupted[w] == ln.words[w] {
			continue
		}
		_, st, bit := ecc.Decode(corrupted[w])
		ev := Event{Cache: c.cfg.Name, Core: c.core, Set: set, Way: way,
			Word: w, Status: st, BitPos: bit}
		switch st {
		case ecc.Corrected:
			c.stats.Corrected++
			res.Events = append(res.Events, ev)
		case ecc.Uncorrectable:
			c.stats.Uncorrectable++
			res.Events = append(res.Events, ev)
			res.Fatal = true
		}
	}
	c.events = res.Events
	return res
}

// Access performs an address-based read access at voltage v. On a hit the
// resident line is read (with fault sampling); on a miss the caller is
// responsible for filling lower levels first. It returns hit=false
// without touching storage on a miss.
func (c *Cache) Access(addr uint64, v float64) (res ReadResult, hit bool) {
	way, ok := c.Lookup(addr)
	if !ok {
		c.stats.Misses++
		return ReadResult{}, false
	}
	c.stats.Hits++
	return c.ReadLine(c.SetIndex(addr), way, v), true
}

// DisableLine removes a line from allocation (calibration dedicates it to
// the ECC monitor). Its contents remain addressable via ReadLine.
func (c *Cache) DisableLine(set, way int) {
	ln := c.lineAt(set, way)
	ln.disabled = true
	ln.valid = false
}

// EnableLine returns a de-configured line to normal service.
func (c *Cache) EnableLine(set, way int) {
	c.lineAt(set, way).disabled = false
}

// LineDisabled reports whether a line is de-configured.
func (c *Cache) LineDisabled(set, way int) bool {
	return c.lineAt(set, way).disabled
}

// DisabledLines returns the number of de-configured lines.
func (c *Cache) DisabledLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].disabled {
			n++
		}
	}
	return n
}

// InvalidateAll drops all cached lines (but preserves disabled marks).
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i].valid = false
	}
}
