package cache

import (
	"testing"
	"testing/quick"

	"eccspec/internal/rng"
	"eccspec/internal/sram"
	"eccspec/internal/variation"
)

// TestQuickLRUInvariants drives a cache with random fill/access sequences
// and checks structural invariants after every operation: the most
// recently touched line is always resident, and a set never holds two
// lines with the same tag.
func TestQuickLRUInvariants(t *testing.T) {
	f := func(seed uint64, ops []uint16) bool {
		c := New(smallConfig("L2D", variation.KindL2D), 0, testModel(seed))
		st := rng.NewStream(seed, 0x7e57)
		for _, op := range ops {
			addr := uint64(op) * sram.LineBytes
			if st.Bernoulli(0.5) {
				c.Fill(addr)
			} else {
				c.Access(addr, safeV)
			}
			// Invariant 1: a just-filled line is resident.
			if st.Bernoulli(0.5) {
				c.Fill(addr)
				if _, hit := c.Lookup(addr); !hit {
					return false
				}
			}
			// Invariant 2: no duplicate tags within the set.
			set := c.SetIndex(addr)
			seen := map[uint64]bool{}
			for w := 0; w < c.cfg.Ways; w++ {
				ln := c.lineAt(set, w)
				if !ln.valid {
					continue
				}
				if seen[ln.tag] {
					return false
				}
				seen[ln.tag] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReadNeverCorruptsStorage: whatever voltage a line is read at,
// the stored contents are unchanged afterwards (access faults are
// transient; §V-E).
func TestQuickReadNeverCorruptsStorage(t *testing.T) {
	c := New(smallConfig("L2D", variation.KindL2D), 0, testModel(99))
	f := func(set8, way8 uint8, vRaw uint16, w0 uint64) bool {
		set := int(set8) % c.cfg.Sets
		way := int(way8) % c.cfg.Ways
		v := 0.3 + 0.6*float64(vRaw)/65535 // 0.3..0.9 V
		var data [sram.WordsPerLine]uint64
		for i := range data {
			data[i] = w0 + uint64(i)
		}
		c.WriteLine(set, way, data)
		c.ReadLine(set, way, v)
		// Verify at a safe voltage.
		res := c.ReadLine(set, way, 0.95)
		return res.Data == data && !res.Fatal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHierarchyCoherence: after any access sequence, re-reading an
// address at a safe voltage returns its canonical fill pattern from
// whichever level serves it.
func TestQuickHierarchyCoherence(t *testing.T) {
	f := func(seed uint64, addrs []uint16) bool {
		h := testHierarchy(seed, 0)
		for _, a16 := range addrs {
			addr := uint64(a16) * sram.LineBytes
			h.AccessData(addr, safeV)
		}
		for _, a16 := range addrs {
			addr := uint64(a16) * sram.LineBytes
			r := h.AccessData(addr, safeV)
			if r.Fatal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
