package cache

import (
	"testing"

	"eccspec/internal/sram"
	"eccspec/internal/variation"
)

// testHierarchy builds a small hierarchy with an L3 for one core.
func testHierarchy(seed uint64, core int) *Hierarchy {
	m := testModel(seed)
	cfg := HierarchyConfig{
		L1I:        Config{Name: "L1I", Kind: variation.KindL1I, Sets: 8, Ways: 4, HitLatency: 1},
		L1D:        Config{Name: "L1D", Kind: variation.KindL1D, Sets: 8, Ways: 4, HitLatency: 1},
		L2I:        Config{Name: "L2I", Kind: variation.KindL2I, Sets: 64, Ways: 8, HitLatency: 9},
		L2D:        Config{Name: "L2D", Kind: variation.KindL2D, Sets: 32, Ways: 8, HitLatency: 9},
		L3:         Config{Name: "L3", Kind: variation.KindL3, Sets: 256, Ways: 8, HitLatency: 15},
		MemLatency: 180,
	}
	l3 := New(cfg.L3, -1, m)
	return NewHierarchy(cfg, core, m, l3)
}

func TestItaniumConfigMatchesTableI(t *testing.T) {
	cfg := ItaniumConfig()
	cases := []struct {
		c    Config
		size int
		ways int
	}{
		{cfg.L1I, 16 << 10, 4},
		{cfg.L1D, 16 << 10, 4},
		{cfg.L2I, 512 << 10, 8},
		{cfg.L2D, 256 << 10, 8},
		{cfg.L3, 32 << 20, 32},
	}
	for _, c := range cases {
		if c.c.SizeBytes() != c.size {
			t.Errorf("%s size %d, want %d", c.c.Name, c.c.SizeBytes(), c.size)
		}
		if c.c.Ways != c.ways {
			t.Errorf("%s ways %d, want %d", c.c.Name, c.c.Ways, c.ways)
		}
	}
	if cfg.L1D.HitLatency != 1 || cfg.L2D.HitLatency != 9 {
		t.Error("hit latencies do not match Table I")
	}
}

func TestScaledConfigPreservesShape(t *testing.T) {
	full, scaled := ItaniumConfig(), ScaledConfig()
	pairs := [][2]Config{
		{full.L1I, scaled.L1I}, {full.L1D, scaled.L1D},
		{full.L2I, scaled.L2I}, {full.L2D, scaled.L2D}, {full.L3, scaled.L3},
	}
	for _, p := range pairs {
		if p[0].Ways != p[1].Ways {
			t.Errorf("%s: associativity changed in scaled config", p[0].Name)
		}
		if p[0].SizeBytes() != 8*p[1].SizeBytes() {
			t.Errorf("%s: scaled size not 1/8 of full", p[0].Name)
		}
	}
}

func TestColdMissGoesToMemory(t *testing.T) {
	h := testHierarchy(1, 0)
	r := h.AccessData(0x1000, safeV)
	if r.Level != "Mem" {
		t.Fatalf("cold access served by %s", r.Level)
	}
	if r.Latency < h.cfg.MemLatency {
		t.Fatalf("memory access latency %d below memory cost", r.Latency)
	}
}

func TestFillPromotesToL1(t *testing.T) {
	h := testHierarchy(1, 0)
	h.AccessData(0x1000, safeV)
	r := h.AccessData(0x1000, safeV)
	if r.Level != "L1D" {
		t.Fatalf("second access served by %s, want L1D", r.Level)
	}
	if r.Latency != 1 {
		t.Fatalf("L1 hit latency %d", r.Latency)
	}
}

func TestInstrPathUsesInstructionCaches(t *testing.T) {
	h := testHierarchy(1, 0)
	h.AccessInstr(0x2000, safeV)
	r := h.AccessInstr(0x2000, safeV)
	if r.Level != "L1I" {
		t.Fatalf("instruction re-access served by %s", r.Level)
	}
	if h.L1D.Stats().Hits+h.L1D.Stats().Misses != 0 {
		t.Fatal("instruction access touched the data cache")
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	h := testHierarchy(1, 0)
	base := uint64(0)
	l1Span := uint64(h.L1D.Config().Sets) * sram.LineBytes
	// Fill L1 set 0 beyond capacity; the first line stays in L2.
	for i := 0; i <= h.L1D.Config().Ways; i++ {
		h.AccessData(base+uint64(i)*l1Span*uint64(h.L2D.Config().Sets/h.L1D.Config().Sets), safeV)
	}
	r := h.AccessData(base, safeV)
	if r.Level == "Mem" {
		t.Fatal("evicted L1 line also lost from L2")
	}
}

func TestL3ServesSecondCore(t *testing.T) {
	m := testModel(5)
	cfg := HierarchyConfig{
		L1I:        Config{Name: "L1I", Kind: variation.KindL1I, Sets: 8, Ways: 4, HitLatency: 1},
		L1D:        Config{Name: "L1D", Kind: variation.KindL1D, Sets: 8, Ways: 4, HitLatency: 1},
		L2I:        Config{Name: "L2I", Kind: variation.KindL2I, Sets: 64, Ways: 8, HitLatency: 9},
		L2D:        Config{Name: "L2D", Kind: variation.KindL2D, Sets: 32, Ways: 8, HitLatency: 9},
		L3:         Config{Name: "L3", Kind: variation.KindL3, Sets: 256, Ways: 8, HitLatency: 15},
		MemLatency: 180,
	}
	l3 := New(cfg.L3, -1, m)
	h0 := NewHierarchy(cfg, 0, m, l3)
	h1 := NewHierarchy(cfg, 1, m, l3)
	h0.AccessData(0x7000, safeV)
	r := h1.AccessData(0x7000, safeV)
	if r.Level != "L3" {
		t.Fatalf("cross-core access served by %s, want L3", r.Level)
	}
}

func TestNilL3GoesToMemory(t *testing.T) {
	m := testModel(9)
	cfg := HierarchyConfig{
		L1D:        Config{Name: "L1D", Kind: variation.KindL1D, Sets: 8, Ways: 4, HitLatency: 1},
		L1I:        Config{Name: "L1I", Kind: variation.KindL1I, Sets: 8, Ways: 4, HitLatency: 1},
		L2D:        Config{Name: "L2D", Kind: variation.KindL2D, Sets: 32, Ways: 8, HitLatency: 9},
		L2I:        Config{Name: "L2I", Kind: variation.KindL2I, Sets: 64, Ways: 8, HitLatency: 9},
		MemLatency: 100,
	}
	h := NewHierarchy(cfg, 0, m, nil)
	r := h.AccessData(0x100, safeV)
	if r.Level != "Mem" {
		t.Fatalf("level %s", r.Level)
	}
	r = h.AccessData(0x100, safeV)
	if r.Level != "L1D" {
		t.Fatalf("refill level %s", r.Level)
	}
}

func TestTargetedL2TestTouchesVictimSet(t *testing.T) {
	h := testHierarchy(13, 0)
	const victimSet = 5
	h.TargetedL2Test(victimSet, true, safeV)
	// Every way of the victim L2 set must now be resident.
	resident := 0
	for w := 0; w < h.L2D.Config().Ways; w++ {
		// Lines are valid if a fill touched them; check via stats
		// indirectly: re-run and count L2 hits.
		_ = w
	}
	st := h.L2D.Stats()
	if st.Fills < uint64(h.L2D.Config().Ways) {
		t.Fatalf("targeted test filled only %d L2 lines", st.Fills)
	}
	_ = resident
}

func TestTargetedL2TestHitsL2OnStep3(t *testing.T) {
	h := testHierarchy(13, 0)
	const victimSet = 5
	h.L2D.ResetStats()
	h.TargetedL2Test(victimSet, true, safeV)
	st := h.L2D.Stats()
	// Step 3 re-accesses 8 lines that must hit in L2.
	if st.Hits < uint64(h.L2D.Config().Ways) {
		t.Fatalf("step 3 produced %d L2D hits, want >= %d", st.Hits, h.L2D.Config().Ways)
	}
}

func TestTargetedL2TestSeesWeakLineErrors(t *testing.T) {
	// Pick the weakest line of the L2D, run the targeted test on its
	// set at its onset voltage, and require correctable events from
	// that set.
	h := testHierarchy(17, 0)
	set, _, p := h.L2D.Array().WeakestLine()
	seen := 0
	for i := 0; i < 50; i++ {
		events, _ := h.TargetedL2Test(set, true, p.Vmax())
		for _, ev := range events {
			if ev.Cache == "L2D" && ev.Set == set {
				seen++
			}
		}
	}
	if seen == 0 {
		t.Fatal("targeted test never observed the weak line's errors")
	}
}

func TestTargetedL2TestInstructionSide(t *testing.T) {
	h := testHierarchy(13, 0)
	h.L2I.ResetStats()
	h.TargetedL2Test(3, false, safeV)
	if h.L2I.Stats().Hits == 0 {
		t.Fatal("instruction-side targeted test produced no L2I hits")
	}
	if h.L2D.Stats().Hits+h.L2D.Stats().Misses != 0 {
		t.Fatal("instruction-side test touched the data L2")
	}
}

func BenchmarkHierarchyAccessHit(b *testing.B) {
	h := testHierarchy(1, 0)
	h.AccessData(0x40, safeV)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AccessData(0x40, safeV)
	}
}

func BenchmarkTargetedL2Test(b *testing.B) {
	h := testHierarchy(1, 0)
	for i := 0; i < b.N; i++ {
		h.TargetedL2Test(i%h.L2D.Config().Sets, true, safeV)
	}
}
