package cache

import (
	"testing"

	"eccspec/internal/ecc"
	"eccspec/internal/sram"
	"eccspec/internal/variation"
)

// testModel returns a variation model for a unit-test chip.
func testModel(seed uint64) *variation.Model {
	return variation.New(seed, variation.LowVoltage())
}

// smallConfig is a tiny cache for fast unit tests.
func smallConfig(name string, kind variation.Kind) Config {
	return Config{Name: name, Kind: kind, Sets: 16, Ways: 4, HitLatency: 9}
}

// safeV is comfortably above every low-voltage Vcrit, so reads are clean.
const safeV = 0.95

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Sets: 0, Ways: 4}, 0, testModel(1))
}

func TestSizeBytes(t *testing.T) {
	cfg := Config{Sets: 512, Ways: 8}
	if cfg.SizeBytes() != 512*8*64 {
		t.Fatalf("SizeBytes = %d", cfg.SizeBytes())
	}
}

func TestFillLookupHit(t *testing.T) {
	c := New(smallConfig("L2D", variation.KindL2D), 0, testModel(1))
	addr := uint64(0x4000)
	if _, hit := c.Lookup(addr); hit {
		t.Fatal("hit in empty cache")
	}
	way := c.Fill(addr)
	gotWay, hit := c.Lookup(addr)
	if !hit || gotWay != way {
		t.Fatalf("Lookup after Fill: way %d hit %v, want way %d", gotWay, hit, way)
	}
}

func TestFillPatternRoundTrip(t *testing.T) {
	c := New(smallConfig("L2D", variation.KindL2D), 0, testModel(1))
	addr := uint64(0x1040)
	way := c.Fill(addr)
	res := c.ReadLine(c.SetIndex(addr), way, safeV)
	if res.Fatal {
		t.Fatal("fatal read at safe voltage")
	}
	for w := 0; w < sram.WordsPerLine; w++ {
		if res.Data[w] != PatternFor(addr, w) {
			t.Fatalf("word %d: got %#x want %#x", w, res.Data[w], PatternFor(addr, w))
		}
	}
}

func TestAccessMissThenHit(t *testing.T) {
	c := New(smallConfig("L2D", variation.KindL2D), 0, testModel(1))
	addr := uint64(0x8000)
	if _, hit := c.Access(addr, safeV); hit {
		t.Fatal("unexpected hit")
	}
	c.Fill(addr)
	if _, hit := c.Access(addr, safeV); !hit {
		t.Fatal("expected hit after fill")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Fills != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := smallConfig("L2D", variation.KindL2D)
	c := New(cfg, 0, testModel(1))
	// Fill all ways of set 0 with distinct tags, then one more: the
	// first (least recently used) must be evicted.
	stride := uint64(cfg.Sets) * sram.LineBytes
	for i := 0; i < cfg.Ways; i++ {
		c.Fill(uint64(i) * stride)
	}
	// Touch line 0 so line 1 becomes LRU.
	if _, hit := c.Access(0, safeV); !hit {
		t.Fatal("line 0 should be resident")
	}
	c.Fill(uint64(cfg.Ways) * stride)
	if _, hit := c.Lookup(0); !hit {
		t.Fatal("recently used line 0 was evicted")
	}
	if _, hit := c.Lookup(1 * stride); hit {
		t.Fatal("LRU line 1 survived eviction")
	}
}

func TestWriteLineReadBack(t *testing.T) {
	c := New(smallConfig("L2D", variation.KindL2D), 0, testModel(1))
	var data [sram.WordsPerLine]uint64
	for i := range data {
		data[i] = uint64(i) * 0xABCDEF
	}
	c.WriteLine(3, 2, data)
	res := c.ReadLine(3, 2, safeV)
	if res.Data != data {
		t.Fatalf("read back %v want %v", res.Data, data)
	}
}

func TestDisableLineExcludedFromAllocation(t *testing.T) {
	cfg := smallConfig("L2D", variation.KindL2D)
	c := New(cfg, 0, testModel(1))
	c.DisableLine(0, 1)
	if !c.LineDisabled(0, 1) {
		t.Fatal("line not marked disabled")
	}
	if c.DisabledLines() != 1 {
		t.Fatalf("DisabledLines = %d", c.DisabledLines())
	}
	stride := uint64(cfg.Sets) * sram.LineBytes
	// Fill more lines into set 0 than remaining ways; way 1 must never
	// be allocated.
	for i := 0; i < 3*cfg.Ways; i++ {
		way := c.Fill(uint64(i) * stride)
		if way == 1 {
			t.Fatal("disabled way was allocated")
		}
	}
	c.EnableLine(0, 1)
	if c.LineDisabled(0, 1) {
		t.Fatal("line still disabled after EnableLine")
	}
}

func TestFillPanicsWithAllWaysDisabled(t *testing.T) {
	cfg := smallConfig("L2D", variation.KindL2D)
	c := New(cfg, 0, testModel(1))
	for w := 0; w < cfg.Ways; w++ {
		c.DisableLine(5, w)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Fill(uint64(5) * sram.LineBytes)
}

func TestInvalidateAllPreservesDisabled(t *testing.T) {
	c := New(smallConfig("L2D", variation.KindL2D), 0, testModel(1))
	c.Fill(0x40)
	c.DisableLine(2, 2)
	c.InvalidateAll()
	if _, hit := c.Lookup(0x40); hit {
		t.Fatal("line survived InvalidateAll")
	}
	if !c.LineDisabled(2, 2) {
		t.Fatal("disabled mark lost")
	}
}

// weakLineHarness locates the weakest line of a cache and returns its
// coordinates plus its onset voltage.
func weakLineHarness(c *Cache) (set, way int, vmax float64) {
	set, way, p := c.Array().WeakestLine()
	return set, way, p.Vmax()
}

func TestReadLineRaisesCorrectableNearVcrit(t *testing.T) {
	c := New(smallConfig("L2D", variation.KindL2D), 0, testModel(7))
	set, way, vmax := weakLineHarness(c)
	var data [sram.WordsPerLine]uint64
	c.WriteLine(set, way, data)
	corrected := 0
	for i := 0; i < 500; i++ {
		res := c.ReadLine(set, way, vmax) // ~50% flip probability
		for _, ev := range res.Events {
			if ev.Status == ecc.Corrected {
				corrected++
				if ev.Cache != "L2D" || ev.Set != set || ev.Way != way {
					t.Fatalf("event coordinates wrong: %+v", ev)
				}
			}
		}
		if res.Fatal {
			// Possible but rare at the single-bit onset voltage.
			continue
		}
		if res.Data != data {
			t.Fatal("corrected read returned wrong data")
		}
	}
	if corrected < 100 {
		t.Fatalf("only %d corrected events in 500 reads at Vcrit", corrected)
	}
	if c.Stats().Corrected == 0 {
		t.Fatal("stats did not count corrected events")
	}
}

func TestReadLineFaultsAreTransient(t *testing.T) {
	// §V-E: faults are access faults; stored data is never corrupted.
	c := New(smallConfig("L2D", variation.KindL2D), 0, testModel(7))
	set, way, vmax := weakLineHarness(c)
	var data [sram.WordsPerLine]uint64
	for i := range data {
		data[i] = 0x5555555555555555
	}
	c.WriteLine(set, way, data)
	// Hammer the line at a voltage where flips are certain.
	for i := 0; i < 200; i++ {
		c.ReadLine(set, way, vmax-0.05)
	}
	// Read back at a safe voltage: contents must be intact, no events.
	res := c.ReadLine(set, way, safeV)
	if len(res.Events) != 0 || res.Fatal {
		t.Fatalf("events at safe voltage after hammering: %+v", res.Events)
	}
	if res.Data != data {
		t.Fatal("stored data was corrupted by low-voltage reads")
	}
}

func TestReadLineUncorrectableDeepBelowVcrit(t *testing.T) {
	c := New(smallConfig("L2D", variation.KindL2D), 0, testModel(11))
	set, way, _ := weakLineHarness(c)
	p := c.Array().LineProfile(set, way)
	pair := p.PairVcrit()
	if pair == 0 {
		t.Skip("no double-flip pair in profile")
	}
	var data [sram.WordsPerLine]uint64
	c.WriteLine(set, way, data)
	fatal := false
	for i := 0; i < 500 && !fatal; i++ {
		res := c.ReadLine(set, way, pair-0.05)
		fatal = fatal || res.Fatal
	}
	if !fatal {
		t.Fatal("no uncorrectable error well below the pair Vcrit")
	}
	if c.Stats().Uncorrectable == 0 {
		t.Fatal("stats did not count uncorrectable events")
	}
}

func TestEventString(t *testing.T) {
	ev := Event{Cache: "L2I", Core: 3, Set: 7, Way: 1, Word: 2, Status: ecc.Corrected}
	want := "L2I core3 set7 way1 word2: corrected"
	if ev.String() != want {
		t.Fatalf("got %q want %q", ev.String(), want)
	}
}

func TestResetStats(t *testing.T) {
	c := New(smallConfig("L2D", variation.KindL2D), 0, testModel(1))
	c.Fill(0)
	c.Access(0, safeV)
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Fatalf("stats not cleared: %+v", c.Stats())
	}
}

func BenchmarkReadLineClean(b *testing.B) {
	c := New(smallConfig("L2D", variation.KindL2D), 0, testModel(1))
	c.Fill(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ReadLine(0, 0, safeV)
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c := New(smallConfig("L2D", variation.KindL2D), 0, testModel(1))
	c.Fill(0x40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x40, safeV)
	}
}
