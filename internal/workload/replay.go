package workload

import (
	"eccspec/internal/cache"
	"eccspec/internal/ecc"
	"eccspec/internal/rng"
	"eccspec/internal/stats"
	"eccspec/internal/variation"
)

// Replayer executes a workload's cache traffic *functionally*: instead of
// converting access counts into Poisson-sampled event counts (the fast
// statistical path the chip simulation uses), it performs every modelled
// L2 access as a real read of a real line, with fault injection and
// SECDED decoding on each one.
//
// Its purpose is validation: the statistical path is a modelling
// shortcut, and the Replayer is the ground truth it must agree with.
// The validate experiment (and TestReplayerMatchesStatisticalModel)
// compare the two at several voltages.
type Replayer struct {
	P     Profile
	cache *cache.Cache
	kind  variation.Kind
	// lines is the workload's resident footprint within this cache.
	lines  [][2]int
	stream *rng.Stream
	rate   float64

	accesses  uint64
	corrected uint64
	fatal     bool
}

// NewReplayer binds a profile's traffic for one structure (KindL2D or
// KindL2I) to a concrete cache. The footprint — which lines the workload
// ever touches — uses the same hash as Workload.Exercises, so the
// statistical and functional paths see the same resident weak lines.
func NewReplayer(p Profile, c *cache.Cache, kind variation.Kind, seed uint64) *Replayer {
	w := New(p, seed)
	rate := p.L2DRate
	if kind == variation.KindL2I {
		rate = p.L2IRate
	}
	r := &Replayer{
		P:      p,
		cache:  c,
		kind:   kind,
		stream: rng.NewStream(seed, 0x4EB1, uint64(kind)),
		rate:   rate,
	}
	cfg := c.Config()
	for set := 0; set < cfg.Sets; set++ {
		for way := 0; way < cfg.Ways; way++ {
			if c.LineDisabled(set, way) {
				continue
			}
			if w.Exercises(kind, set, way) {
				r.lines = append(r.lines, [2]int{set, way})
				// Park the footprint in the cache so reads are hits.
				var data [8]uint64
				for i := range data {
					data[i] = rng.Hash(seed, uint64(set), uint64(way), uint64(i))
				}
				c.WriteLine(set, way, data)
			}
		}
	}
	return r
}

// FootprintLines returns the number of resident lines the replayer
// drives.
func (r *Replayer) FootprintLines() int { return len(r.lines) }

// Tick replays dt seconds of traffic at effective voltage v: a Poisson
// number of accesses spread uniformly over the footprint, each performed
// as a physical line read. It returns the corrected-error events raised
// this tick.
func (r *Replayer) Tick(dt, v float64) int {
	if len(r.lines) == 0 {
		return 0
	}
	mean := r.rate * dt
	n := stats.SamplePoisson(r.stream, mean)
	events := 0
	for i := 0; i < n; i++ {
		ln := r.lines[r.stream.Intn(len(r.lines))]
		res := r.cache.ReadLine(ln[0], ln[1], v)
		r.accesses++
		for _, ev := range res.Events {
			if ev.Status == ecc.Corrected {
				events++
				r.corrected++
			}
		}
		if res.Fatal {
			r.fatal = true
		}
	}
	return events
}

// Counters returns total accesses and corrected events so far.
func (r *Replayer) Counters() (accesses, corrected uint64) {
	return r.accesses, r.corrected
}

// Fatal reports whether any replayed read hit an uncorrectable fault.
func (r *Replayer) Fatal() bool { return r.fatal }
