package workload

import (
	"math"
	"testing"

	"eccspec/internal/variation"
)

func TestTableIIInventory(t *testing.T) {
	if n := len(SPECint()); n != 12 {
		t.Errorf("SPECint has %d benchmarks, want 12", n)
	}
	if n := len(SPECfp()); n != 12 {
		t.Errorf("SPECfp has %d benchmarks, want 12", n)
	}
	if n := len(CoreMark()); n != 4 {
		t.Errorf("CoreMark has %d kernels, want 4", n)
	}
	if n := len(SPECjbb()); n != 1 {
		t.Errorf("SPECjbb has %d profiles, want 1", n)
	}
	// wupwise and apsi could not run on the paper's system.
	for _, p := range SPECfp() {
		if p.Name == "wupwise" || p.Name == "apsi" {
			t.Errorf("excluded benchmark %s present", p.Name)
		}
	}
}

func TestSuiteNamesMatchSuites(t *testing.T) {
	suites := Suites()
	for _, name := range SuiteNames() {
		if _, ok := suites[name]; !ok {
			t.Errorf("suite %s missing from Suites()", name)
		}
	}
	if len(SuiteNames()) != len(suites) {
		t.Error("SuiteNames and Suites disagree on count")
	}
}

func TestProfilesSane(t *testing.T) {
	var all []Profile
	for _, ps := range Suites() {
		all = append(all, ps...)
	}
	all = append(all, StressTest(), StressKernel(), Idle(), Virus(8, 340e6))
	for _, p := range all {
		if p.Name == "" || p.Suite == "" {
			t.Errorf("profile missing identity: %+v", p)
		}
		if p.Activity <= 0 || p.Activity > 1 {
			t.Errorf("%s: activity %v out of range", p.Name, p.Activity)
		}
		if p.ActivityLow < 0 || p.ActivityLow > p.Activity {
			t.Errorf("%s: low activity %v above high %v", p.Name, p.ActivityLow, p.Activity)
		}
		if p.L2DCoverage < 0 || p.L2DCoverage > 1 || p.L2ICoverage < 0 || p.L2ICoverage > 1 {
			t.Errorf("%s: coverage out of range", p.Name)
		}
		if p.IPC <= 0 {
			t.Errorf("%s: IPC %v", p.Name, p.IPC)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"mcf", "crafty", "swim", "jbb-8wh", "crc",
		"stress-test", "stress-kernel", "idle-spin"} {
		p, ok := ByName(name)
		if !ok || p.Name != name {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName accepted unknown benchmark")
	}
}

func TestVirusOscillationFrequency(t *testing.T) {
	const clock = 340e6
	for _, nops := range []int{0, 4, 8, 16} {
		p := Virus(nops, clock)
		want := clock / float64(VirusFMACount+nops)
		if math.Abs(p.OscFreqHz-want) > 1e-6 {
			t.Errorf("virus nop%d: freq %v want %v", nops, p.OscFreqHz, want)
		}
	}
}

func TestVirusMeanPowerFallsWithNops(t *testing.T) {
	prev := 2.0
	for _, nops := range []int{0, 2, 4, 8, 12, 20} {
		p := Virus(nops, 340e6)
		if p.Activity >= prev {
			t.Fatalf("virus nop%d activity %v not below previous %v", nops, p.Activity, prev)
		}
		prev = p.Activity
	}
}

func TestVirusNop0HasNoSwing(t *testing.T) {
	p0 := Virus(0, 340e6)
	p8 := Virus(8, 340e6)
	if p0.OscAmplitude >= p8.OscAmplitude {
		t.Fatalf("nop0 amplitude %v should be far below nop8 %v",
			p0.OscAmplitude, p8.OscAmplitude)
	}
}

func TestVirusPanicsOnNegativeNops(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Virus(-1, 340e6)
}

func TestDemandSteadyWorkload(t *testing.T) {
	w := New(StressTest(), 42)
	d := w.Demand(0.001)
	if d.Activity < 0.8 || d.Activity > 1.0 {
		t.Fatalf("stress activity %v", d.Activity)
	}
	if d.L2DAccesses <= 0 || d.L2IAccesses <= 0 {
		t.Fatal("no cache traffic")
	}
	wantD := StressTest().L2DRate * 0.001
	if math.Abs(d.L2DAccesses-wantD) > 1e-9 {
		t.Fatalf("L2D accesses %v want %v", d.L2DAccesses, wantD)
	}
	if w.Elapsed() != 0.001 {
		t.Fatalf("elapsed %v", w.Elapsed())
	}
}

func TestDemandPhaseAlternation(t *testing.T) {
	w := New(StressKernel(), 42)
	// Sample the first high phase and the following low phase.
	var highAct, lowAct float64
	for w.Elapsed() < 29 {
		d := w.Demand(1.0)
		highAct += d.Activity
	}
	highAct /= 29
	w.Demand(2.0) // cross the boundary
	for w.Elapsed() < 59 {
		d := w.Demand(1.0)
		lowAct += d.Activity
	}
	lowAct /= 28
	if highAct < 5*lowAct {
		t.Fatalf("phase contrast too small: high %v low %v", highAct, lowAct)
	}
}

func TestDemandActivityBounded(t *testing.T) {
	w := New(StressTest(), 7)
	for i := 0; i < 10000; i++ {
		d := w.Demand(0.001)
		if d.Activity < 0 || d.Activity > 1 {
			t.Fatalf("activity %v out of bounds", d.Activity)
		}
	}
}

func TestExercisesDeterministic(t *testing.T) {
	w1 := New(StressTest(), 42)
	w2 := New(StressTest(), 42)
	for set := 0; set < 100; set++ {
		if w1.Exercises(variation.KindL2D, set, 3) != w2.Exercises(variation.KindL2D, set, 3) {
			t.Fatal("footprint not deterministic")
		}
	}
}

func TestExercisesCoverageRate(t *testing.T) {
	p := Profile{Name: "halfcov", Suite: "x", Activity: 0.5, ActivityLow: 0.5,
		L2DCoverage: 0.5, L2ICoverage: 0.1, IPC: 1}
	w := New(p, 99)
	hitD, hitI := 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		if w.Exercises(variation.KindL2D, i/8, i%8) {
			hitD++
		}
		if w.Exercises(variation.KindL2I, i/8, i%8) {
			hitI++
		}
	}
	if math.Abs(float64(hitD)/n-0.5) > 0.02 {
		t.Fatalf("L2D coverage rate %v, want ~0.5", float64(hitD)/n)
	}
	if math.Abs(float64(hitI)/n-0.1) > 0.02 {
		t.Fatalf("L2I coverage rate %v, want ~0.1", float64(hitI)/n)
	}
}

func TestExercisesDiffersAcrossWorkloads(t *testing.T) {
	wa := New(StressTest(), 42)
	wb := New(StressKernel(), 42)
	diff := 0
	for set := 0; set < 200; set++ {
		if wa.Exercises(variation.KindL2D, set, 0) != wb.Exercises(variation.KindL2D, set, 0) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different workloads share identical footprints")
	}
}

func TestIdleIsQuiet(t *testing.T) {
	idle := Idle()
	if idle.Activity > 0.1 {
		t.Fatalf("idle activity %v", idle.Activity)
	}
	if idle.L2DRate > 1e4 {
		t.Fatalf("idle cache traffic %v", idle.L2DRate)
	}
}

func BenchmarkDemand(b *testing.B) {
	w := New(StressTest(), 42)
	for i := 0; i < b.N; i++ {
		w.Demand(0.001)
	}
}
