// Package workload models the benchmark applications the paper evaluates
// (Table II: CoreMark, SPECjbb2005, SPEC CPU2000 int and fp, plus the
// characterization stress test) as statistical demand generators.
//
// The voltage speculation system never inspects instruction semantics; it
// reacts to what a workload *does* to the chip:
//
//   - draw current (activity factor -> power -> PDN droop),
//   - fluctuate (phase changes and fast oscillation -> voltage noise),
//   - access the L2 caches (L1 misses -> reads that can trip weak cells),
//   - cover some footprint of cache lines (which weak lines get
//     exercised — the property the software-only baseline depends on).
//
// A Profile captures those four behaviours per benchmark with
// representative constants; a Workload instance adds per-run phase and
// noise state. Special profiles model the paper's measurement tools: the
// stress kernel (30 s on / 30 s off, §V-D1) and the FMA/NOP voltage virus
// whose oscillation frequency is set by its NOP count (§IV-B).
package workload

import (
	"fmt"
	"math"
	"sort"

	"eccspec/internal/rng"
	"eccspec/internal/variation"
)

// Profile describes one benchmark's statistical demand.
type Profile struct {
	// Name identifies the benchmark ("mcf", "coremark", ...).
	Name string
	// Suite is the benchmark's suite label ("SPECint", "CoreMark", ...).
	Suite string
	// Activity is the mean activity factor (0..1) in the high phase.
	Activity float64
	// ActivityLow is the activity factor in the low phase; equal to
	// Activity for steady workloads.
	ActivityLow float64
	// PhaseSeconds alternates the workload between high and low phases
	// with this period; 0 means steady.
	PhaseSeconds float64
	// OscAmplitude is the fast power-oscillation amplitude, as a
	// fraction of full activity (drives resonant PDN droop).
	OscAmplitude float64
	// OscFreqHz is the dominant fast-oscillation frequency; 0 means
	// broadband/none.
	OscFreqHz float64
	// L2DRate and L2IRate are the rates (per second) of L2 data and
	// instruction reads that can surface ECC events, in the high phase.
	// L1 filtering means any *particular* L2 line is re-read far more
	// rarely than the raw miss rate, and hardware throttles corrected-
	// error reporting; these constants fold both effects in.
	L2DRate float64
	L2IRate float64
	// L2DCoverage and L2ICoverage are the fractions of L2 lines the
	// workload's footprint ever touches.
	L2DCoverage float64
	L2ICoverage float64
	// IPC is instructions per cycle, for work/energy accounting.
	IPC float64
}

// Demand is one control tick's worth of load.
type Demand struct {
	// Activity is the effective activity factor for this tick.
	Activity float64
	// OscAmplitude and OscFreqHz describe the fast oscillation.
	OscAmplitude float64
	OscFreqHz    float64
	// L2DAccesses and L2IAccesses are the expected L2 access counts in
	// this tick.
	L2DAccesses float64
	L2IAccesses float64
	// IPC is the workload's instructions-per-cycle for the tick.
	IPC float64
}

// SPECint returns the SPEC CPU2000 integer profiles from Table II.
func SPECint() []Profile {
	mk := func(name string, act, l2d, l2i, covD, covI, ipc float64) Profile {
		return Profile{Name: name, Suite: "SPECint", Activity: act,
			ActivityLow: act, L2DRate: l2d, L2IRate: l2i,
			L2DCoverage: covD, L2ICoverage: covI, IPC: ipc,
			OscAmplitude: 0.05}
	}
	return []Profile{
		mk("gzip", 0.62, 2.1e3, 0.3e3, 0.35, 0.10, 1.1),
		mk("vpr", 0.58, 3.4e3, 0.5e3, 0.45, 0.14, 0.9),
		mk("gcc", 0.55, 4.8e3, 2.6e3, 0.60, 0.55, 0.8),
		mk("mcf", 0.48, 9.5e3, 0.4e3, 0.80, 0.08, 0.4),
		mk("crafty", 0.70, 1.2e3, 1.8e3, 0.25, 0.45, 1.3),
		mk("parser", 0.57, 3.9e3, 0.9e3, 0.50, 0.20, 0.9),
		mk("eon", 0.68, 1.0e3, 1.4e3, 0.22, 0.40, 1.2),
		mk("perlbmk", 0.63, 2.8e3, 2.2e3, 0.40, 0.50, 1.0),
		mk("gap", 0.60, 3.1e3, 0.7e3, 0.42, 0.16, 1.0),
		mk("vortex", 0.64, 3.6e3, 2.4e3, 0.55, 0.52, 1.0),
		mk("bzip2", 0.61, 2.5e3, 0.3e3, 0.38, 0.09, 1.1),
		mk("twolf", 0.56, 4.2e3, 0.6e3, 0.48, 0.15, 0.9),
	}
}

// SPECfp returns the SPEC CPU2000 floating-point profiles from Table II
// (the paper could not run wupwise and apsi on its system, so they are
// absent here too).
func SPECfp() []Profile {
	mk := func(name string, act, l2d, l2i, covD, covI, ipc float64) Profile {
		return Profile{Name: name, Suite: "SPECfp", Activity: act,
			ActivityLow: act, L2DRate: l2d, L2IRate: l2i,
			L2DCoverage: covD, L2ICoverage: covI, IPC: ipc,
			OscAmplitude: 0.08}
	}
	return []Profile{
		mk("swim", 0.66, 8.8e3, 0.2e3, 0.85, 0.06, 0.7),
		mk("mgrid", 0.69, 6.4e3, 0.2e3, 0.70, 0.05, 0.8),
		mk("applu", 0.67, 7.2e3, 0.3e3, 0.75, 0.07, 0.8),
		mk("mesa", 0.72, 2.2e3, 1.2e3, 0.35, 0.30, 1.2),
		mk("galgel", 0.71, 5.1e3, 0.4e3, 0.60, 0.09, 1.0),
		mk("art", 0.59, 9.8e3, 0.2e3, 0.82, 0.05, 0.5),
		mk("equake", 0.62, 7.9e3, 0.3e3, 0.78, 0.07, 0.6),
		mk("facerec", 0.70, 4.4e3, 0.6e3, 0.55, 0.12, 1.0),
		mk("ammp", 0.60, 6.8e3, 0.5e3, 0.72, 0.10, 0.7),
		mk("lucas", 0.68, 5.9e3, 0.2e3, 0.66, 0.05, 0.9),
		mk("fma3d", 0.71, 4.1e3, 1.0e3, 0.52, 0.25, 1.0),
		mk("sixtrack", 0.74, 2.9e3, 0.8e3, 0.40, 0.18, 1.2),
	}
}

// CoreMark returns the CoreMark profiles: the suite's four kernels,
// tailored for mobile processors (small footprints, high IPC).
func CoreMark() []Profile {
	mk := func(name string, act, l2d, l2i, covD, covI, ipc float64) Profile {
		return Profile{Name: name, Suite: "CoreMark", Activity: act,
			ActivityLow: act, L2DRate: l2d, L2IRate: l2i,
			L2DCoverage: covD, L2ICoverage: covI, IPC: ipc,
			OscAmplitude: 0.04}
	}
	return []Profile{
		mk("list-processing", 0.67, 1.8e3, 0.2e3, 0.20, 0.05, 1.2),
		mk("matrix-manipulation", 0.75, 2.4e3, 0.1e3, 0.25, 0.04, 1.4),
		mk("state-machine", 0.64, 0.9e3, 0.3e3, 0.12, 0.08, 1.1),
		mk("crc", 0.70, 1.1e3, 0.1e3, 0.10, 0.03, 1.3),
	}
}

// SPECjbb returns the SPECjbb2005 profile: eight warehouses per core,
// with gentle multi-second phase behaviour from garbage collection.
func SPECjbb() []Profile {
	return []Profile{{
		Name: "jbb-8wh", Suite: "SPECjbb2005",
		Activity: 0.66, ActivityLow: 0.50, PhaseSeconds: 4,
		OscAmplitude: 0.10,
		L2DRate:      5.6e3, L2IRate: 3.0e3,
		L2DCoverage: 0.70, L2ICoverage: 0.60, IPC: 0.9,
	}}
}

// StressTest returns the characterization stress application: CPU, cache
// and memory intensive kernels with near-total cache coverage, used to
// find minimum safe voltages (§II-A).
func StressTest() Profile {
	return Profile{
		Name: "stress-test", Suite: "Stress",
		Activity: 0.90, ActivityLow: 0.90,
		OscAmplitude: 0.12,
		L2DRate:      1.2e4, L2IRate: 6.0e3,
		L2DCoverage: 0.98, L2ICoverage: 0.98, IPC: 0.8,
	}
}

// StressKernel returns the §V-D1 robustness kernel: 30 seconds of heavy
// load alternating with 30 seconds of a low-power firmware spin loop.
func StressKernel() Profile {
	return Profile{
		Name: "stress-kernel", Suite: "Stress",
		Activity: 0.95, ActivityLow: 0.06, PhaseSeconds: 30,
		OscAmplitude: 0.10,
		L2DRate:      1.0e4, L2IRate: 4.0e3,
		L2DCoverage: 0.90, L2ICoverage: 0.80, IPC: 0.8,
	}
}

// Idle returns the firmware spin-loop profile used to park auxiliary
// cores: minimal power, no cache traffic beyond a resident loop.
func Idle() Profile {
	return Profile{
		Name: "idle-spin", Suite: "Idle",
		Activity: 0.05, ActivityLow: 0.05,
		L2DRate: 1e3, L2IRate: 1e3,
		L2DCoverage: 0.002, L2ICoverage: 0.002, IPC: 0.2,
	}
}

// VirusFMACount is the number of high-power FMA instructions per virus
// loop iteration; the NOP count stretches the rest of the period.
const VirusFMACount = 8

// Virus returns the §IV-B voltage virus with the given NOP count at the
// given core clock. The loop alternates VirusFMACount FMA instructions
// with nops NOPs, so its power oscillates at clockHz/(VirusFMACount+nops);
// around 8 NOPs that lands on the PDN's resonance and produces the
// worst-case droop (Fig. 15) even though the mean power *falls* with the
// NOP count.
func Virus(nops int, clockHz float64) Profile {
	if nops < 0 {
		panic("workload: negative NOP count")
	}
	period := float64(VirusFMACount + nops)
	// Mean activity: FMAs at full power, NOPs at ~10%.
	mean := (float64(VirusFMACount)*1.0 + float64(nops)*0.10) / period
	return Profile{
		Name:  fmt.Sprintf("virus-nop%d", nops),
		Suite: "Virus",
		// The oscillating component swings between the FMA burst and
		// the NOP stretch; with no NOPs there is no low phase at all.
		Activity: mean, ActivityLow: mean,
		OscAmplitude: oscAmplitude(nops),
		OscFreqHz:    clockHz / period,
		L2DRate:      1e4, L2IRate: 1e4,
		L2DCoverage: 0.01, L2ICoverage: 0.01, IPC: 1.5,
	}
}

// oscAmplitude returns the virus's current-swing amplitude: zero without
// NOPs (constant full power) and approaching the full FMA/NOP contrast as
// the duty cycle nears 50%.
func oscAmplitude(nops int) float64 {
	if nops == 0 {
		return 0.02 // residual pipeline noise
	}
	duty := float64(VirusFMACount) / float64(VirusFMACount+nops)
	// Fundamental Fourier component of a square wave at this duty cycle.
	return 0.9 * (2 / math.Pi) * math.Sin(math.Pi*duty)
}

// Suites returns the benchmark suites used in the evaluation, keyed by
// suite name, matching Table II.
func Suites() map[string][]Profile {
	return map[string][]Profile{
		"CoreMark":    CoreMark(),
		"SPECjbb2005": SPECjbb(),
		"SPECint":     SPECint(),
		"SPECfp":      SPECfp(),
	}
}

// SuiteNames returns the evaluation suite names in the paper's order.
func SuiteNames() []string {
	return []string{"CoreMark", "SPECjbb2005", "SPECint", "SPECfp"}
}

// ByName looks up a profile across all suites plus the special profiles
// (stress-test, stress-kernel, idle-spin). It returns false if unknown.
func ByName(name string) (Profile, bool) {
	for _, ps := range Suites() {
		for _, p := range ps {
			if p.Name == name {
				return p, true
			}
		}
	}
	for _, p := range []Profile{StressTest(), StressKernel(), Idle()} {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names returns every profile name ByName resolves, sorted — the
// vocabulary for "unknown workload" error messages and CLI listings.
func Names() []string {
	var names []string
	for _, ps := range Suites() {
		for _, p := range ps {
			names = append(names, p.Name)
		}
	}
	for _, p := range []Profile{StressTest(), StressKernel(), Idle()} {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return names
}

// Workload is a running instance of a profile on one core.
type Workload struct {
	P       Profile
	seed    uint64
	elapsed float64
	noise   *rng.Stream
}

// New instantiates a profile. The seed ties the workload's footprint and
// noise to the run (combine the chip seed and core id).
func New(p Profile, seed uint64) *Workload {
	return &Workload{
		P:     p,
		seed:  rng.Hash(seed, hashString(p.Name)),
		noise: rng.NewStream(seed, hashString(p.Name), 0x4057),
	}
}

// Elapsed returns the workload's accumulated runtime in seconds.
func (w *Workload) Elapsed() float64 { return w.elapsed }

// SnapshotState returns the workload's mutable state — elapsed runtime
// and the noise stream position — for checkpointing. The footprint seed
// is derived from the profile at construction and needs no capture.
func (w *Workload) SnapshotState() (elapsed float64, noise uint64) {
	return w.elapsed, w.noise.State()
}

// RestoreState positions the workload exactly where a SnapshotState
// observation was taken, so subsequent Demand calls continue bit-exactly.
func (w *Workload) RestoreState(elapsed float64, noise uint64) {
	w.elapsed = elapsed
	w.noise.SetState(noise)
}

// inHighPhase reports whether the workload is in its high-activity phase.
func (w *Workload) inHighPhase() bool {
	if w.P.PhaseSeconds <= 0 {
		return true
	}
	return int(w.elapsed/w.P.PhaseSeconds)%2 == 0
}

// Demand advances the workload by dt seconds and returns the tick's load.
func (w *Workload) Demand(dt float64) Demand {
	high := w.inHighPhase()
	w.elapsed += dt
	act := w.P.Activity
	scale := 1.0
	if !high {
		act = w.P.ActivityLow
		if w.P.Activity > 0 {
			scale = w.P.ActivityLow / w.P.Activity
		}
	}
	// Small multiplicative noise models instruction-mix variation.
	act *= 1 + 0.04*(2*w.noise.Float64()-1)
	if act < 0 {
		act = 0
	}
	if act > 1 {
		act = 1
	}
	return Demand{
		Activity:     act,
		OscAmplitude: w.P.OscAmplitude,
		OscFreqHz:    w.P.OscFreqHz,
		L2DAccesses:  w.P.L2DRate * scale * dt,
		L2IAccesses:  w.P.L2IRate * scale * dt,
		IPC:          w.P.IPC,
	}
}

// Exercises reports whether this workload's footprint includes the cache
// line (kind, set, way). The answer is a fixed function of the workload
// identity and line coordinates, so a given benchmark exercises the same
// weak lines run after run — the determinism the software baseline (and
// Fig. 4's per-core error-count spread) relies on.
func (w *Workload) Exercises(kind variation.Kind, set, way int) bool {
	cov := w.P.L2DCoverage
	if kind == variation.KindL2I || kind == variation.KindL1I {
		cov = w.P.L2ICoverage
	}
	u := rng.UniformAt(w.seed, 0xF007, uint64(kind), uint64(set), uint64(way))
	return u < cov
}

// hashString folds a string into a uint64 key.
func hashString(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
