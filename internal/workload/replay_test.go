package workload

import (
	"testing"

	"eccspec/internal/cache"
	"eccspec/internal/variation"
)

func replayCache(seed uint64) *cache.Cache {
	m := variation.New(seed, variation.LowVoltage())
	return cache.New(cache.Config{Name: "L2D", Kind: variation.KindL2D,
		Sets: 64, Ways: 8, HitLatency: 9}, 0, m)
}

func TestReplayerFootprintMatchesCoverage(t *testing.T) {
	c := replayCache(1)
	p := StressTest() // 98% coverage
	r := NewReplayer(p, c, variation.KindL2D, 1)
	total := c.Config().Sets * c.Config().Ways
	got := float64(r.FootprintLines()) / float64(total)
	if got < p.L2DCoverage-0.05 || got > 1.0 {
		t.Fatalf("footprint fraction %.3f, want ~%.2f", got, p.L2DCoverage)
	}
}

func TestReplayerSkipsDisabledLines(t *testing.T) {
	c := replayCache(2)
	c.DisableLine(3, 3)
	r := NewReplayer(StressTest(), c, variation.KindL2D, 2)
	for _, ln := range [][2]int{{3, 3}} {
		_ = ln
	}
	// Run plenty of traffic; the disabled line must never be read.
	for i := 0; i < 200; i++ {
		r.Tick(0.001, 0.95)
	}
	if !c.LineDisabled(3, 3) {
		t.Fatal("disabled mark lost")
	}
	// Footprint must not include the disabled line.
	if r.FootprintLines() >= c.Config().Sets*c.Config().Ways {
		t.Fatal("footprint includes the disabled line")
	}
}

func TestReplayerCleanAtSafeVoltage(t *testing.T) {
	c := replayCache(3)
	r := NewReplayer(StressTest(), c, variation.KindL2D, 3)
	for i := 0; i < 300; i++ {
		if ev := r.Tick(0.001, 0.95); ev != 0 {
			t.Fatalf("events at safe voltage: %d", ev)
		}
	}
	acc, corr := r.Counters()
	if acc == 0 || corr != 0 || r.Fatal() {
		t.Fatalf("counters %d/%d fatal=%v", corr, acc, r.Fatal())
	}
}

func TestReplayerErrorsNearOnset(t *testing.T) {
	c := replayCache(4)
	set, way, p := c.Array().WeakestLine()
	r := NewReplayer(StressTest(), c, variation.KindL2D, 4)
	// Ensure the weak line is in the stress footprint (98% coverage
	// makes this near-certain; skip the rare exclusion).
	included := false
	for i := 0; i < r.FootprintLines(); i++ {
		// no accessor for lines; probe indirectly via many ticks below
		included = true
		_ = i
	}
	_ = included
	_ = set
	_ = way
	total := 0
	for i := 0; i < 2000; i++ {
		total += r.Tick(0.001, p.Vmax()-0.005)
	}
	if total == 0 {
		t.Fatal("no corrected events near the weak line's onset")
	}
}

func TestReplayerInstructionSide(t *testing.T) {
	m := variation.New(5, variation.LowVoltage())
	c := cache.New(cache.Config{Name: "L2I", Kind: variation.KindL2I,
		Sets: 128, Ways: 8, HitLatency: 9}, 0, m)
	r := NewReplayer(StressTest(), c, variation.KindL2I, 5)
	if r.FootprintLines() == 0 {
		t.Fatal("instruction-side footprint empty")
	}
}
