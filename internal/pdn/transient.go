package pdn

import "math"

// Transient is a time-domain model of the rail's resonant loop: a series
// RLC network between the regulator and the load, integrated with a
// fixed sub-tick step. The control-loop simulation uses the analytic
// impedance (Rail.Droop) because it only needs per-tick worst-case
// numbers; Transient exists to validate that shortcut — its measured
// steady-state droop amplitude under a sinusoidal load must match
// Rail.Impedance at every frequency — and to render step-response
// ringing for demonstrations.
//
// Component values derive from the rail parameters: the network is
// normalized so its resonant frequency is the rail's FRes, its quality
// factor Q, and its mid-band impedance RRes.
type Transient struct {
	// L and C are the loop inductance and decoupling capacitance.
	L, C float64
	// R is the loop's series resistance.
	R float64
	// State: capacitor (load-side) voltage deviation and inductor
	// current.
	vDev float64
	iL   float64
}

// NewTransient builds the time-domain network matching a rail's resonant
// parameters. For a series RLC driven by load-current steps, the droop
// seen by the load peaks near f0 = 1/(2*pi*sqrt(LC)) with peak impedance
// ~ L/(RC) and quality factor Q = sqrt(L/C)/R.
func NewTransient(r *Rail) *Transient {
	f0 := r.Resonance()
	q := r.p.Q
	zPeak := r.p.RRes
	w0 := 2 * math.Pi * f0
	// Solve Z0 = sqrt(L/C) from Q and the peak impedance: for a
	// parallel-resonant tank seen by the load, Zpeak = Q * Z0.
	z0 := zPeak / q
	return &Transient{
		L: z0 / w0,
		C: 1 / (z0 * w0),
		R: z0 / q,
	}
}

// Step advances the network by dt seconds with the given load current
// (deviation from the DC operating point) and returns the instantaneous
// droop at the load, in volts. A standard semi-implicit Euler update
// keeps the oscillator stable for dt well below the resonant period.
func (t *Transient) Step(dt, loadCurrent float64) float64 {
	// The capacitor absorbs the difference between the inductor
	// current (from the regulator) and the load current.
	t.vDev += dt * (t.iL - loadCurrent) / t.C
	// The inductor sees the negative of the deviation minus resistive
	// loss (the regulator holds its end at the setpoint).
	t.iL += dt * (-t.vDev - t.R*t.iL) / t.L
	// Droop is the negative voltage deviation at the load.
	return -t.vDev
}

// Reset zeroes the network state.
func (t *Transient) Reset() {
	t.vDev, t.iL = 0, 0
}

// ResonanceHz returns the network's natural frequency.
func (t *Transient) ResonanceHz() float64 {
	return 1 / (2 * math.Pi * math.Sqrt(t.L*t.C))
}

// MeasureAmplitude drives the network with a sinusoidal load of the
// given amplitude and frequency for enough cycles to reach steady state
// and returns the peak droop amplitude observed in the final cycles —
// the time-domain equivalent of |Z(f)| * amplitude.
func (t *Transient) MeasureAmplitude(freqHz, amp float64) float64 {
	t.Reset()
	period := 1 / freqHz
	dt := period / 256
	// Settle for many cycles, then record.
	settle := int(40 * 256)
	record := int(10 * 256)
	peak := 0.0
	for i := 0; i < settle+record; i++ {
		tt := float64(i) * dt
		d := t.Step(dt, amp*math.Sin(2*math.Pi*freqHz*tt))
		if i >= settle && math.Abs(d) > peak {
			peak = math.Abs(d)
		}
	}
	return peak
}
