// Package pdn models the power delivery network: per-domain voltage rails
// with a stepping regulator, static IR drop, and a resonant response to
// oscillating load current.
//
// The Itanium 9560 exposes one supply line per pair of cores plus a
// separate uncore line, each independently adjustable (paper §IV-A). The
// regulator moves in 5 mV steps, the granularity the voltage control
// system uses.
//
// The effective voltage seen by the circuits is the regulator setpoint
// minus droop. Droop has two parts:
//
//   - a static IR component proportional to mean load current, and
//   - a resonant component: the PDN's RLC impedance peaks at the chip's
//     mid-frequency resonance (tens to hundreds of MHz), so a workload
//     whose power alternates near that frequency — like the paper's
//     FMA/NOP "voltage virus" with ~8 NOPs — produces a much larger
//     droop than a steadier workload of even higher average power
//     (Figs. 15 and 16).
//
// Time scales above the resonance period are treated quasi-statically:
// each control tick supplies the rail with a load summary (mean current,
// oscillation amplitude and frequency) and reads back the worst-case
// effective voltage for that tick.
package pdn

import (
	"math"

	"eccspec/internal/rng"
)

// Params configures a voltage rail.
type Params struct {
	// VNominal is the rail's initial setpoint, in volts.
	VNominal float64
	// VMin and VMax clamp the setpoint range.
	VMin float64
	VMax float64
	// StepV is the regulator step size (paper: 5 mV).
	StepV float64
	// RStatic is the effective static PDN resistance, in ohms: mean
	// current times RStatic gives the IR droop.
	RStatic float64
	// RRes is the peak resonant impedance at the resonance frequency,
	// in ohms.
	RRes float64
	// Q is the resonance quality factor (dimensionless); higher Q means
	// a narrower, sharper peak.
	Q float64
	// FRes is the nominal PDN resonance frequency in Hz. Each
	// manufactured rail deviates a few percent from it.
	FRes float64
	// FResSpread is the relative per-rail resonance variation (e.g.
	// 0.05 for +/-5%).
	FResSpread float64
}

// DefaultParams returns rail parameters representative of a server-class
// PDN at the low-voltage operating point: a 100 MHz resonance with Q ~ 3
// and a resonant impedance several times the static resistance.
func DefaultParams(vNominal float64) Params {
	return Params{
		VNominal:   vNominal,
		VMin:       0.300,
		VMax:       1.250,
		StepV:      0.005,
		RStatic:    0.0020,
		RRes:       0.0110,
		Q:          3.0,
		FRes:       100e6,
		FResSpread: 0.05,
	}
}

// Load summarizes the current demand on a rail over one control tick.
type Load struct {
	// MeanCurrent is the average current draw, in amperes.
	MeanCurrent float64
	// OscAmplitude is the amplitude of the oscillating component of the
	// current, in amperes (zero for steady workloads).
	OscAmplitude float64
	// OscFreqHz is the dominant frequency of the oscillating component.
	OscFreqHz float64
}

// Add combines two load summaries (e.g. the two cores sharing a rail).
// Oscillation components at different frequencies don't cancel; the
// summary keeps the component with the larger resonant droop potential,
// which is what worst-case analysis needs.
func (l Load) Add(other Load, p Params) Load {
	sum := Load{MeanCurrent: l.MeanCurrent + other.MeanCurrent}
	// Keep the oscillation that produces more droop at this rail.
	zl := resonantImpedance(p, l.OscFreqHz) * l.OscAmplitude
	zo := resonantImpedance(p, other.OscFreqHz) * other.OscAmplitude
	if zl >= zo {
		sum.OscAmplitude, sum.OscFreqHz = l.OscAmplitude, l.OscFreqHz
	} else {
		sum.OscAmplitude, sum.OscFreqHz = other.OscAmplitude, other.OscFreqHz
	}
	return sum
}

// Rail is one independently regulated supply line.
type Rail struct {
	name     string
	p        Params
	fRes     float64
	target   float64
	disturb  float64
	onChange []func()
}

// NewRail constructs a rail. The chip seed and rail id determine the
// rail's individual resonance frequency.
func NewRail(name string, seed uint64, id int, p Params) *Rail {
	jitter := 1 + p.FResSpread*(2*rng.UniformAt(seed, 0x9D11, uint64(id))-1)
	return &Rail{
		name:   name,
		p:      p,
		fRes:   p.FRes * jitter,
		target: clamp(p.VNominal, p.VMin, p.VMax),
	}
}

// Name returns the rail's label.
func (r *Rail) Name() string { return r.name }

// Params returns the rail's configuration.
func (r *Rail) Params() Params { return r.p }

// Resonance returns this rail's individual resonance frequency in Hz.
func (r *Rail) Resonance() float64 { return r.fRes }

// Target returns the current regulator setpoint in volts.
func (r *Rail) Target() float64 { return r.target }

// SetTarget moves the setpoint to v, snapped to the step grid and clamped
// to [VMin, VMax]. It returns the setpoint actually applied.
func (r *Rail) SetTarget(v float64) float64 {
	v = math.Round(v/r.p.StepV) * r.p.StepV
	v = clamp(v, r.p.VMin, r.p.VMax)
	if v != r.target {
		r.target = v
		r.notify()
	}
	return r.target
}

// OnChange registers fn to run whenever the rail's electrical state
// actually changes — a setpoint move or an injected disturbance. The
// chip uses this to drop out of adaptive-fidelity fast-forward the
// moment any actor (controller, experiment sweep, fault injection)
// touches a rail.
func (r *Rail) OnChange(fn func()) { r.onChange = append(r.onChange, fn) }

func (r *Rail) notify() {
	for _, fn := range r.onChange {
		fn()
	}
}

// StepDown lowers the setpoint by n regulator steps.
func (r *Rail) StepDown(n int) float64 {
	return r.SetTarget(r.target - float64(n)*r.p.StepV)
}

// StepUp raises the setpoint by n regulator steps.
func (r *Rail) StepUp(n int) float64 {
	return r.SetTarget(r.target + float64(n)*r.p.StepV)
}

// resonantImpedance evaluates the band-pass RLC impedance magnitude at
// frequency f: RRes at resonance, rolling off with the classic
// Q*(f/f0 - f0/f) detuning term on either side.
func resonantImpedance(p Params, f float64) float64 {
	if f <= 0 {
		return 0
	}
	return impedanceAt(p.RRes, p.Q, p.FRes, f)
}

func impedanceAt(rres, q, f0, f float64) float64 {
	x := q * (f/f0 - f0/f)
	return rres / math.Sqrt(1+x*x)
}

// Impedance returns this rail's resonant impedance magnitude at f, using
// the rail's individual resonance frequency.
func (r *Rail) Impedance(f float64) float64 {
	if f <= 0 {
		return 0
	}
	return impedanceAt(r.p.RRes, r.p.Q, r.fRes, f)
}

// SetDisturbance injects an external droop d (in volts) on top of the
// load-driven droop: a regulator transient, a board-level event —
// anything the PDN model itself doesn't produce. Zero clears it; a
// negative value models overshoot. Fault injection
// (internal/faultinject) drives this.
func (r *Rail) SetDisturbance(d float64) {
	if d != r.disturb {
		r.disturb = d
		r.notify()
	}
}

// Disturbance returns the currently injected external droop in volts.
func (r *Rail) Disturbance() float64 { return r.disturb }

// Droop returns the worst-case supply droop for the given load, in volts:
// static IR drop plus the resonant response to the load's oscillation,
// plus any injected external disturbance.
func (r *Rail) Droop(l Load) float64 {
	d := r.p.RStatic*l.MeanCurrent + r.disturb
	if l.OscAmplitude > 0 && l.OscFreqHz > 0 {
		d += r.Impedance(l.OscFreqHz) * l.OscAmplitude
	}
	return d
}

// Effective returns the worst-case effective voltage at the load points
// for this tick: setpoint minus droop.
func (r *Rail) Effective(l Load) float64 {
	return r.target - r.Droop(l)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
