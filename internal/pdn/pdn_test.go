package pdn

import (
	"math"
	"testing"
	"testing/quick"
)

func testRail() *Rail {
	return NewRail("dom0", 42, 0, DefaultParams(0.800))
}

func TestNewRailStartsAtNominal(t *testing.T) {
	r := testRail()
	if r.Target() != 0.800 {
		t.Fatalf("target %v", r.Target())
	}
	if r.Name() != "dom0" {
		t.Fatalf("name %q", r.Name())
	}
}

func TestSetTargetSnapsToGrid(t *testing.T) {
	r := testRail()
	got := r.SetTarget(0.7532)
	if math.Abs(got-0.755) > 1e-12 {
		t.Fatalf("snapped to %v, want 0.755", got)
	}
}

func TestSetTargetClamps(t *testing.T) {
	r := testRail()
	if got := r.SetTarget(0.1); got != r.Params().VMin {
		t.Fatalf("low clamp: %v", got)
	}
	if got := r.SetTarget(5.0); got != r.Params().VMax {
		t.Fatalf("high clamp: %v", got)
	}
}

func TestStepUpDown(t *testing.T) {
	r := testRail()
	v0 := r.Target()
	r.StepDown(2)
	if math.Abs(r.Target()-(v0-0.010)) > 1e-12 {
		t.Fatalf("after 2 down: %v", r.Target())
	}
	r.StepUp(1)
	if math.Abs(r.Target()-(v0-0.005)) > 1e-12 {
		t.Fatalf("after 1 up: %v", r.Target())
	}
}

func TestResonanceWithinSpread(t *testing.T) {
	p := DefaultParams(0.800)
	for id := 0; id < 32; id++ {
		r := NewRail("x", 7, id, p)
		rel := r.Resonance()/p.FRes - 1
		if math.Abs(rel) > p.FResSpread {
			t.Fatalf("rail %d resonance %.1f MHz outside spread", id, r.Resonance()/1e6)
		}
	}
}

func TestResonanceVariesAcrossRails(t *testing.T) {
	a := NewRail("a", 7, 0, DefaultParams(0.8))
	b := NewRail("b", 7, 1, DefaultParams(0.8))
	if a.Resonance() == b.Resonance() {
		t.Fatal("rails share identical resonance")
	}
}

func TestImpedancePeaksAtResonance(t *testing.T) {
	r := testRail()
	f0 := r.Resonance()
	zPeak := r.Impedance(f0)
	if math.Abs(zPeak-r.Params().RRes) > 1e-12 {
		t.Fatalf("peak impedance %v, want RRes %v", zPeak, r.Params().RRes)
	}
	for _, mult := range []float64{0.2, 0.5, 2, 5} {
		if z := r.Impedance(f0 * mult); z >= zPeak {
			t.Fatalf("impedance at %.2f*f0 (%v) not below peak (%v)", mult, z, zPeak)
		}
	}
	if r.Impedance(0) != 0 {
		t.Fatal("impedance at DC should be 0 (handled via RStatic)")
	}
}

func TestDroopStaticComponent(t *testing.T) {
	r := testRail()
	l := Load{MeanCurrent: 10}
	want := r.Params().RStatic * 10
	if d := r.Droop(l); math.Abs(d-want) > 1e-12 {
		t.Fatalf("droop %v, want %v", d, want)
	}
}

func TestDroopResonantComponentDominatesAtF0(t *testing.T) {
	r := testRail()
	steady := Load{MeanCurrent: 10}
	resonant := Load{MeanCurrent: 5, OscAmplitude: 3, OscFreqHz: r.Resonance()}
	if r.Droop(resonant) <= r.Droop(steady) {
		t.Fatalf("resonant load droop %v not above steadier high-current load %v",
			r.Droop(resonant), r.Droop(steady))
	}
}

func TestEffectiveVoltage(t *testing.T) {
	r := testRail()
	l := Load{MeanCurrent: 8}
	want := r.Target() - r.Droop(l)
	if v := r.Effective(l); math.Abs(v-want) > 1e-12 {
		t.Fatalf("effective %v, want %v", v, want)
	}
}

func TestLoadAddSumsMeanCurrent(t *testing.T) {
	p := DefaultParams(0.8)
	a := Load{MeanCurrent: 3}
	b := Load{MeanCurrent: 4}
	if sum := a.Add(b, p); sum.MeanCurrent != 7 {
		t.Fatalf("sum current %v", sum.MeanCurrent)
	}
}

func TestLoadAddKeepsWorstOscillation(t *testing.T) {
	p := DefaultParams(0.8)
	atRes := Load{OscAmplitude: 1, OscFreqHz: p.FRes}
	offRes := Load{OscAmplitude: 1.5, OscFreqHz: p.FRes * 10}
	sum := atRes.Add(offRes, p)
	if sum.OscFreqHz != p.FRes {
		t.Fatalf("kept off-resonance component: %+v", sum)
	}
	// Symmetric order.
	sum = offRes.Add(atRes, p)
	if sum.OscFreqHz != p.FRes {
		t.Fatalf("order-dependent result: %+v", sum)
	}
}

func TestQuickDroopNonNegative(t *testing.T) {
	r := testRail()
	f := func(mean, amp, freq float64) bool {
		l := Load{MeanCurrent: math.Abs(mean), OscAmplitude: math.Abs(amp),
			OscFreqHz: math.Abs(freq)}
		d := r.Droop(l)
		return d >= 0 && !math.IsNaN(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetTargetAlwaysInRange(t *testing.T) {
	r := testRail()
	p := r.Params()
	f := func(v float64) bool {
		got := r.SetTarget(v)
		return got >= p.VMin-1e-12 && got <= p.VMax+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDroop(b *testing.B) {
	r := testRail()
	l := Load{MeanCurrent: 8, OscAmplitude: 2, OscFreqHz: 90e6}
	for i := 0; i < b.N; i++ {
		r.Droop(l)
	}
}
