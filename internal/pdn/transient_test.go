package pdn

import (
	"math"
	"testing"
)

func TestTransientResonanceMatchesRail(t *testing.T) {
	r := testRail()
	tr := NewTransient(r)
	if rel := math.Abs(tr.ResonanceHz()/r.Resonance() - 1); rel > 0.01 {
		t.Fatalf("network resonance %.2f MHz vs rail %.2f MHz",
			tr.ResonanceHz()/1e6, r.Resonance()/1e6)
	}
}

func TestTransientMatchesAnalyticImpedance(t *testing.T) {
	// The time-domain network and the analytic |Z(f)| are two models of
	// the same physics; their sinusoidal steady-state droops must agree
	// across the band. This is the PDN analogue of the error-model
	// validate experiment.
	r := testRail()
	tr := NewTransient(r)
	f0 := r.Resonance()
	const amp = 2.0 // amperes
	for _, c := range []struct {
		mult, tol float64
	}{
		// Near resonance the two models must agree closely; on the
		// far skirts the band-pass approximation and the physical
		// network legitimately diverge (the network's low-frequency
		// asymptote is resistive, not zero), so the bound loosens.
		{0.5, 0.35}, {0.8, 0.12}, {1.0, 0.12}, {1.25, 0.12}, {2.0, 0.35},
	} {
		f := f0 * c.mult
		want := r.Impedance(f) * amp
		got := tr.MeasureAmplitude(f, amp)
		if rel := math.Abs(got/want - 1); rel > c.tol {
			t.Errorf("at %.2f*f0: time-domain droop %.4f V vs analytic %.4f V (%.0f%% off)",
				c.mult, got, want, 100*rel)
		}
	}
}

func TestTransientPeaksAtResonance(t *testing.T) {
	r := testRail()
	tr := NewTransient(r)
	f0 := r.Resonance()
	atRes := tr.MeasureAmplitude(f0, 1)
	below := tr.MeasureAmplitude(f0/3, 1)
	above := tr.MeasureAmplitude(f0*3, 1)
	if atRes <= below || atRes <= above {
		t.Fatalf("no resonant peak: %.4f at f0 vs %.4f / %.4f off-resonance",
			atRes, below, above)
	}
}

func TestTransientStepResponseRings(t *testing.T) {
	// A load-current step on an underdamped network must overshoot and
	// ring before settling.
	r := testRail()
	tr := NewTransient(r)
	period := 1 / tr.ResonanceHz()
	dt := period / 256
	var droops []float64
	for i := 0; i < 256*12; i++ {
		droops = append(droops, tr.Step(dt, 1.0))
	}
	// Find the first two local maxima of the droop.
	var peaks []float64
	for i := 1; i < len(droops)-1; i++ {
		if droops[i] > droops[i-1] && droops[i] > droops[i+1] && droops[i] > 0.001 {
			peaks = append(peaks, droops[i])
		}
	}
	if len(peaks) < 2 {
		t.Fatalf("no ringing observed (%d peaks)", len(peaks))
	}
	if peaks[1] >= peaks[0] {
		t.Fatalf("ringing not decaying: %v then %v", peaks[0], peaks[1])
	}
	// Final value must settle toward the resistive droop R*I.
	settled := droops[len(droops)-1]
	if math.Abs(settled-tr.R*1.0) > 0.35*tr.R {
		t.Fatalf("step response settled at %v, want near %v", settled, tr.R)
	}
}

func TestTransientReset(t *testing.T) {
	tr := NewTransient(testRail())
	tr.Step(1e-9, 5)
	tr.Reset()
	if d := tr.Step(1e-12, 0); math.Abs(d) > 1e-9 {
		t.Fatalf("state survived reset: %v", d)
	}
}
