// Package mca models the machine-check architecture's corrected-error
// reporting path: per-structure banks with CMCI-style throttling and a
// bounded event log.
//
// The paper's evaluation platform records "the set and way of
// correctable cache errors reported by the hardware" through firmware
// hooks and uses those logs to characterize each core's error profile
// (§IV-A4). Real hardware throttles corrected-error signalling — a bank
// that fired recently stays silent for a hold-off window — so logs see a
// bounded-rate sample of the underlying event stream, not every event.
//
// The chip routes workload-induced ECC events through a Log; tools like
// cmd/errprofile reconstruct per-line error profiles from it, exactly
// the way the paper's characterization did.
package mca

import (
	"fmt"
	"sort"
)

// Event is one logged corrected-error report.
type Event struct {
	// Time is the simulation timestamp in seconds.
	Time float64
	// Core is the reporting core id.
	Core int
	// Bank names the reporting structure ("L2D", "L2I", "RegFile").
	Bank string
	// Set and Way locate the line within the structure.
	Set, Way int
	// Count is how many events this report aggregates (a throttled
	// bank folds a burst into one report with a count).
	Count int
}

// String renders the event the way the paper's logs would.
func (e Event) String() string {
	return fmt.Sprintf("t=%.3fs core%d %s set=%d way=%d count=%d",
		e.Time, e.Core, e.Bank, e.Set, e.Way, e.Count)
}

// Config tunes the log.
type Config struct {
	// Capacity bounds the retained event ring; older events are
	// discarded first.
	Capacity int
	// HoldoffSeconds is the per-bank minimum spacing between reports
	// (CMCI throttling). Events arriving inside the window are folded
	// into the next report's Count.
	HoldoffSeconds float64
}

// DefaultConfig returns a log sized for multi-minute runs with a 10 ms
// per-bank hold-off.
func DefaultConfig() Config {
	return Config{Capacity: 4096, HoldoffSeconds: 0.010}
}

type bankKey struct {
	core int
	bank string
}

type bankState struct {
	lastReport float64
	pendingN   int
	pending    Event
	havePend   bool
}

// Log is the chip-wide corrected-error log.
type Log struct {
	cfg   Config
	ring  []Event
	next  int
	full  bool
	banks map[bankKey]*bankState

	reported   uint64
	suppressed uint64
}

// NewLog creates a log. Zero-value Config fields take defaults.
func NewLog(cfg Config) *Log {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultConfig().Capacity
	}
	if cfg.HoldoffSeconds < 0 {
		cfg.HoldoffSeconds = 0
	}
	return &Log{
		cfg:   cfg,
		ring:  make([]Event, cfg.Capacity),
		banks: make(map[bankKey]*bankState),
	}
}

// Report offers an event to the bank. Inside the hold-off window the
// event is folded into a pending report (its Count accumulates and its
// coordinates take the latest occurrence); otherwise it is logged
// immediately, flushing any pending fold first. It returns true when
// the event was logged now.
func (l *Log) Report(e Event) bool {
	if e.Count <= 0 {
		e.Count = 1
	}
	key := bankKey{e.Core, e.Bank}
	st := l.banks[key]
	if st == nil {
		st = &bankState{lastReport: -l.cfg.HoldoffSeconds - 1}
		l.banks[key] = st
	}
	if e.Time-st.lastReport < l.cfg.HoldoffSeconds {
		// Throttled: fold into the pending report.
		if st.havePend {
			st.pending.Count += e.Count
			st.pending.Time = e.Time
			st.pending.Set, st.pending.Way = e.Set, e.Way
		} else {
			st.pending = e
			st.havePend = true
		}
		l.suppressed += uint64(e.Count)
		return false
	}
	if st.havePend {
		l.append(st.pending)
		l.reported++
		st.havePend = false
	}
	l.append(e)
	l.reported++
	st.lastReport = e.Time
	return true
}

// append stores an event in the ring.
func (l *Log) append(e Event) {
	l.ring[l.next] = e
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	if l.full {
		return len(l.ring)
	}
	return l.next
}

// Events returns the retained events, oldest first.
func (l *Log) Events() []Event {
	if !l.full {
		return append([]Event(nil), l.ring[:l.next]...)
	}
	out := make([]Event, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// Counts returns how many reports were logged and how many raw events
// were folded away by throttling.
func (l *Log) Counts() (reported, suppressed uint64) {
	return l.reported, l.suppressed
}

// BankSnapshot is one bank's throttling state in a LogState.
type BankSnapshot struct {
	Core       int     `json:"core"`
	Bank       string  `json:"bank"`
	LastReport float64 `json:"last_report"`
	HavePend   bool    `json:"have_pend,omitempty"`
	Pending    Event   `json:"pending,omitempty"`
}

// LogState is the log's full mutable state for checkpointing.
type LogState struct {
	Events     []Event        `json:"events,omitempty"`
	Banks      []BankSnapshot `json:"banks,omitempty"`
	Reported   uint64         `json:"reported"`
	Suppressed uint64         `json:"suppressed"`
}

// CaptureState snapshots the retained events, per-bank throttle state,
// and counters. Banks are emitted in deterministic (core, bank) order so
// identical logs capture to identical states.
func (l *Log) CaptureState() LogState {
	st := LogState{Events: l.Events(), Reported: l.reported, Suppressed: l.suppressed}
	keys := make([]bankKey, 0, len(l.banks))
	for k := range l.banks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].core != keys[j].core {
			return keys[i].core < keys[j].core
		}
		return keys[i].bank < keys[j].bank
	})
	for _, k := range keys {
		b := l.banks[k]
		st.Banks = append(st.Banks, BankSnapshot{Core: k.core, Bank: k.bank,
			LastReport: b.lastReport, HavePend: b.havePend, Pending: b.pending})
	}
	return st
}

// RestoreState replaces the log's contents with a captured state. The
// ring keeps its configured capacity; if the state carries more events
// than fit, only the newest are retained (matching what the ring itself
// would have kept).
func (l *Log) RestoreState(st LogState) {
	for i := range l.ring {
		l.ring[i] = Event{}
	}
	l.next, l.full = 0, false
	events := st.Events
	if len(events) > len(l.ring) {
		events = events[len(events)-len(l.ring):]
	}
	for _, e := range events {
		l.append(e)
	}
	l.banks = make(map[bankKey]*bankState)
	for _, b := range st.Banks {
		l.banks[bankKey{b.Core, b.Bank}] = &bankState{
			lastReport: b.LastReport, havePend: b.HavePend, pending: b.Pending}
	}
	l.reported, l.suppressed = st.Reported, st.Suppressed
}

// ProfileEntry aggregates a line's activity in the log.
type ProfileEntry struct {
	Core     int
	Bank     string
	Set, Way int
	Events   int
	Total    int // sum of Counts
}

// Profile reconstructs the per-line error profile from the retained
// events — the §IV-A4 characterization — sorted by descending total.
func (l *Log) Profile() []ProfileEntry {
	agg := make(map[Event]*ProfileEntry)
	for _, e := range l.Events() {
		key := Event{Core: e.Core, Bank: e.Bank, Set: e.Set, Way: e.Way}
		pe := agg[key]
		if pe == nil {
			pe = &ProfileEntry{Core: e.Core, Bank: e.Bank, Set: e.Set, Way: e.Way}
			agg[key] = pe
		}
		pe.Events++
		pe.Total += e.Count
	}
	out := make([]ProfileEntry, 0, len(agg))
	for _, pe := range agg {
		out = append(out, *pe)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		if out[i].Core != out[j].Core {
			return out[i].Core < out[j].Core
		}
		if out[i].Bank != out[j].Bank {
			return out[i].Bank < out[j].Bank
		}
		if out[i].Set != out[j].Set {
			return out[i].Set < out[j].Set
		}
		return out[i].Way < out[j].Way
	})
	return out
}
