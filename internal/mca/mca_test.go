package mca

import (
	"testing"
	"testing/quick"
)

func TestReportAndRetrieve(t *testing.T) {
	l := NewLog(Config{Capacity: 8, HoldoffSeconds: 0})
	for i := 0; i < 3; i++ {
		if !l.Report(Event{Time: float64(i), Core: 0, Bank: "L2D", Set: i, Way: 1}) {
			t.Fatalf("report %d rejected with zero hold-off", i)
		}
	}
	if l.Len() != 3 {
		t.Fatalf("len %d", l.Len())
	}
	evs := l.Events()
	if evs[0].Set != 0 || evs[2].Set != 2 {
		t.Fatalf("order wrong: %v", evs)
	}
	rep, sup := l.Counts()
	if rep != 3 || sup != 0 {
		t.Fatalf("counts %d/%d", rep, sup)
	}
}

func TestRingWrapsOldestFirst(t *testing.T) {
	l := NewLog(Config{Capacity: 4, HoldoffSeconds: 0})
	for i := 0; i < 7; i++ {
		l.Report(Event{Time: float64(i), Core: 0, Bank: "L2D", Set: i})
	}
	if l.Len() != 4 {
		t.Fatalf("len %d", l.Len())
	}
	evs := l.Events()
	for i, e := range evs {
		if e.Set != i+3 {
			t.Fatalf("wrap order wrong at %d: %v", i, evs)
		}
	}
}

func TestThrottleFoldsBursts(t *testing.T) {
	l := NewLog(Config{Capacity: 16, HoldoffSeconds: 0.010})
	if !l.Report(Event{Time: 0, Core: 1, Bank: "L2I", Set: 5, Way: 2}) {
		t.Fatal("first report should pass")
	}
	// A burst inside the hold-off window is folded, not logged.
	for i := 1; i <= 4; i++ {
		if l.Report(Event{Time: 0.001 * float64(i), Core: 1, Bank: "L2I", Set: 5, Way: 2}) {
			t.Fatalf("burst event %d passed the throttle", i)
		}
	}
	_, sup := l.Counts()
	if sup != 4 {
		t.Fatalf("suppressed %d, want 4", sup)
	}
	// After the window, the pending fold flushes along with the new
	// report.
	l.Report(Event{Time: 0.020, Core: 1, Bank: "L2I", Set: 5, Way: 2})
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("%d events, want first + flushed fold + new", len(evs))
	}
	if evs[1].Count != 4 {
		t.Fatalf("fold count %d, want 4", evs[1].Count)
	}
}

func TestThrottleIsPerBank(t *testing.T) {
	l := NewLog(Config{Capacity: 16, HoldoffSeconds: 0.010})
	l.Report(Event{Time: 0, Core: 0, Bank: "L2D"})
	if !l.Report(Event{Time: 0.001, Core: 0, Bank: "L2I"}) {
		t.Fatal("different bank throttled by sibling")
	}
	if !l.Report(Event{Time: 0.002, Core: 1, Bank: "L2D"}) {
		t.Fatal("different core throttled by sibling")
	}
}

func TestProfileAggregates(t *testing.T) {
	l := NewLog(Config{Capacity: 64, HoldoffSeconds: 0})
	for i := 0; i < 5; i++ {
		l.Report(Event{Time: float64(i), Core: 2, Bank: "L2D", Set: 7, Way: 3, Count: 2})
	}
	l.Report(Event{Time: 9, Core: 2, Bank: "L2D", Set: 1, Way: 0})
	prof := l.Profile()
	if len(prof) != 2 {
		t.Fatalf("%d profile entries", len(prof))
	}
	top := prof[0]
	if top.Set != 7 || top.Way != 3 || top.Total != 10 || top.Events != 5 {
		t.Fatalf("top entry %+v", top)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Time: 1.5, Core: 3, Bank: "L2I", Set: 12, Way: 4, Count: 2}
	want := "t=1.500s core3 L2I set=12 way=4 count=2"
	if e.String() != want {
		t.Fatalf("got %q", e.String())
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	l := NewLog(Config{})
	if cap(l.ring) != DefaultConfig().Capacity {
		t.Fatalf("capacity %d", cap(l.ring))
	}
	l2 := NewLog(Config{Capacity: 4, HoldoffSeconds: -1})
	if l2.cfg.HoldoffSeconds != 0 {
		t.Fatal("negative hold-off not clamped")
	}
}

func TestQuickLenNeverExceedsCapacity(t *testing.T) {
	f := func(times []uint16) bool {
		l := NewLog(Config{Capacity: 32, HoldoffSeconds: 0.005})
		for _, tt := range times {
			l.Report(Event{Time: float64(tt) / 100, Core: int(tt) % 4, Bank: "L2D",
				Set: int(tt) % 64, Way: int(tt) % 8})
		}
		return l.Len() <= 32 && len(l.Events()) == l.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventsCopyBeforeWrap(t *testing.T) {
	l := NewLog(Config{Capacity: 8, HoldoffSeconds: 0})
	l.Report(Event{Time: 1, Core: 0, Bank: "L2D", Set: 5})
	evs := l.Events()
	evs[0].Set = 99
	if l.Events()[0].Set != 5 {
		t.Fatal("Events exposed internal storage")
	}
}

func TestReportDefaultsCountToOne(t *testing.T) {
	l := NewLog(Config{Capacity: 4, HoldoffSeconds: 0})
	l.Report(Event{Time: 0, Core: 0, Bank: "L2D"})
	if l.Events()[0].Count != 1 {
		t.Fatalf("count %d, want 1", l.Events()[0].Count)
	}
}
