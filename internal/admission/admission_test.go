package admission

import (
	"sync"
	"testing"
	"time"
)

func TestQueuePriorityOrderFIFOWithinClass(t *testing.T) {
	q := NewQueue[string](8)
	push := func(v string, pri int) {
		t.Helper()
		if err := q.Push(v, pri); err != nil {
			t.Fatalf("push %q: %v", v, err)
		}
	}
	push("low-a", 0)
	push("high-a", 5)
	push("low-b", 0)
	push("high-b", 5)
	push("mid", 3)
	q.Close()
	want := []string{"high-a", "high-b", "mid", "low-a", "low-b"}
	for _, w := range want {
		v, ok := q.Pop()
		if !ok || v != w {
			t.Fatalf("pop = %q ok=%v, want %q", v, ok, w)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop after drain should report closed")
	}
}

func TestQueueFullAndClosed(t *testing.T) {
	q := NewQueue[int](2)
	if q.Capacity() != 2 {
		t.Fatalf("capacity = %d", q.Capacity())
	}
	q.Push(1, 0)
	q.Push(2, 0)
	if err := q.Push(3, 9); err != ErrFull {
		t.Fatalf("push over capacity: %v, want ErrFull", err)
	}
	if q.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", q.Depth())
	}
	q.Close()
	if err := q.Push(4, 0); err != ErrClosed {
		t.Fatalf("push after close: %v, want ErrClosed", err)
	}
	// The two accepted items still drain.
	for i := 0; i < 2; i++ {
		if _, ok := q.Pop(); !ok {
			t.Fatal("accepted item lost on close")
		}
	}
}

func TestQueueRemove(t *testing.T) {
	q := NewQueue[int](8)
	for i := 1; i <= 5; i++ {
		q.Push(i, i%2) // 1,3,5 at pri 1; 2,4 at pri 0
	}
	if v, ok := q.Remove(func(v int) bool { return v == 3 }); !ok || v != 3 {
		t.Fatalf("remove 3 = %d ok=%v", v, ok)
	}
	if _, ok := q.Remove(func(v int) bool { return v == 99 }); ok {
		t.Fatal("removed an item that was never queued")
	}
	q.Close()
	want := []int{1, 5, 2, 4}
	for _, w := range want {
		v, ok := q.Pop()
		if !ok || v != w {
			t.Fatalf("pop after remove = %d ok=%v, want %d", v, ok, w)
		}
	}
}

func TestQueueBlockingPop(t *testing.T) {
	q := NewQueue[int](1)
	got := make(chan int, 1)
	go func() {
		v, _ := q.Pop()
		got <- v
	}()
	time.Sleep(10 * time.Millisecond) // let the consumer block
	q.Push(42, 0)
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("pop = %d", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked pop never woke up")
	}
}

func TestQueueConcurrentProducersDrainExactly(t *testing.T) {
	const producers, each = 8, 100
	q := NewQueue[int](producers * each)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := q.Push(p*each+i, i%4); err != nil {
					t.Errorf("push: %v", err)
				}
			}
		}(p)
	}
	wg.Wait()
	q.Close()
	seen := make(map[int]bool)
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("duplicate pop %d", v)
		}
		seen[v] = true
	}
	if len(seen) != producers*each {
		t.Fatalf("drained %d items, want %d", len(seen), producers*each)
	}
}

func TestLimiterBurstThenRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	l := NewLimiter(2, 3) // 2 tokens/s, burst 3
	l.SetClock(func() time.Time { return now })

	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("k"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := l.Allow("k")
	if ok {
		t.Fatal("request past burst admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry-after = %v, want (0, 1s]", retry)
	}
	// Half a second refills one token at 2/s.
	now = now.Add(500 * time.Millisecond)
	if ok, _ := l.Allow("k"); !ok {
		t.Fatal("refilled token denied")
	}
	if ok, _ := l.Allow("k"); ok {
		t.Fatal("second request on one refilled token admitted")
	}
	// Keys are independent.
	if ok, _ := l.Allow("other"); !ok {
		t.Fatal("fresh key denied")
	}
}

func TestLimiterDisabled(t *testing.T) {
	l := NewLimiter(0, 10)
	if l != nil {
		t.Fatal("rate 0 should disable the limiter")
	}
	for i := 0; i < 1000; i++ {
		if ok, _ := l.Allow("k"); !ok {
			t.Fatal("nil limiter denied a request")
		}
	}
	if l.Rate() != 0 || l.Burst() != 0 {
		t.Fatal("nil limiter reports a nonzero config")
	}
}

func TestLimiterPrunesIdleBuckets(t *testing.T) {
	now := time.Unix(1000, 0)
	l := NewLimiter(10, 10)
	l.SetClock(func() time.Time { return now })
	for i := 0; i < maxBuckets; i++ {
		l.Allow(string(rune('a')) + time.Duration(i).String())
	}
	// Everything refills; the next new key triggers a prune instead of
	// growing without bound.
	now = now.Add(time.Minute)
	l.Allow("fresh")
	l.mu.Lock()
	n := len(l.buckets)
	l.mu.Unlock()
	if n > 1 {
		t.Fatalf("prune left %d buckets, want 1", n)
	}
}
