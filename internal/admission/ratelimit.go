package admission

import (
	"math"
	"sync"
	"time"
)

// maxBuckets bounds the limiter's per-client state: when an insert
// would grow the map past this, every bucket already refilled to its
// full burst (i.e. idle for at least burst/rate seconds) is pruned. A
// client whose bucket was pruned simply starts over with a full burst,
// so pruning can only ever be generous, never unfair.
const maxBuckets = 8192

// bucket is one client's token balance at the instant `last`.
type bucket struct {
	tokens float64
	last   time.Time
}

// Limiter applies a token-bucket rate limit per client key. Each key
// accrues `rate` tokens per second up to `burst`; a request costs one
// token. The zero-value-like disabled limiter is represented by a nil
// *Limiter, whose Allow always admits.
type Limiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time
}

// NewLimiter builds a limiter granting rate tokens/second with the
// given burst. Returns nil (the always-allow limiter) when rate <= 0;
// a burst below 1 selects max(1, ceil(rate)).
func NewLimiter(rate float64, burst int) *Limiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = math.Ceil(rate)
		if b < 1 {
			b = 1
		}
	}
	return &Limiter{
		rate:    rate,
		burst:   b,
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// SetClock substitutes the limiter's time source (tests).
func (l *Limiter) SetClock(now func() time.Time) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

// Rate returns the configured tokens/second (0 for a nil limiter).
func (l *Limiter) Rate() float64 {
	if l == nil {
		return 0
	}
	return l.rate
}

// Burst returns the configured burst (0 for a nil limiter).
func (l *Limiter) Burst() int {
	if l == nil {
		return 0
	}
	return int(l.burst)
}

// Allow charges one token to key. When the key is out of tokens it
// returns ok=false and how long until the next token accrues — the
// Retry-After the HTTP layer should send.
func (l *Limiter) Allow(key string) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= maxBuckets {
			l.pruneLocked()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// pruneLocked drops every bucket that has refilled to the full burst;
// the caller holds l.mu.
func (l *Limiter) pruneLocked() {
	now := l.now()
	for k, b := range l.buckets {
		if dt := now.Sub(b.last).Seconds(); math.Min(l.burst, b.tokens+dt*l.rate) >= l.burst {
			delete(l.buckets, k)
		}
	}
}
