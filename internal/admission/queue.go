// Package admission is the daemon's front door under load: a bounded
// priority queue that sheds work instead of accepting it unboundedly,
// and a per-client token-bucket rate limiter.
//
// Both pieces are deliberately dependency-free and synchronous — the
// queue is a binary heap under one mutex with a condition variable for
// the consumer, the limiter a lazily refilled bucket map — because the
// hot path they sit on is an HTTP handler that must answer in
// microseconds whether a request gets in.
package admission

import (
	"errors"
	"sync"
)

// ErrFull is returned by Push when the queue is at capacity; the
// caller turns it into backpressure (HTTP 429 + Retry-After).
var ErrFull = errors.New("admission: queue is full")

// ErrClosed is returned by Push after Close: the accepting side is
// draining and takes nothing new.
var ErrClosed = errors.New("admission: queue is closed")

// entry pairs a queued value with its ordering keys: higher priority
// pops first, and the monotone sequence number keeps FIFO order within
// a priority class.
type entry[T any] struct {
	v   T
	pri int
	seq uint64
}

// Queue is a bounded priority queue: Push is non-blocking and fails
// fast with ErrFull at capacity, Pop blocks until an item arrives or
// the queue is closed and empty. Items pop highest-priority first,
// FIFO within a class. All methods are safe for concurrent use.
type Queue[T any] struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	heap     []entry[T]
	cap      int
	seq      uint64
	closed   bool
}

// NewQueue builds a queue holding at most capacity items; capacity
// values below 1 select 1.
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue[T]{cap: capacity}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

// Capacity returns the queue's fixed bound.
func (q *Queue[T]) Capacity() int { return q.cap }

// Depth returns the number of queued items.
func (q *Queue[T]) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

// Push enqueues v at the given priority. It never blocks: a full queue
// returns ErrFull (with the caller expected to shed the request) and a
// closed queue returns ErrClosed.
func (q *Queue[T]) Push(v T, priority int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if len(q.heap) >= q.cap {
		return ErrFull
	}
	q.seq++
	q.heap = append(q.heap, entry[T]{v: v, pri: priority, seq: q.seq})
	q.siftUp(len(q.heap) - 1)
	q.nonEmpty.Signal()
	return nil
}

// Pop blocks until an item is available and returns it, or returns
// ok=false once the queue has been closed and fully drained.
func (q *Queue[T]) Pop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.heap) == 0 && !q.closed {
		q.nonEmpty.Wait()
	}
	if len(q.heap) == 0 {
		return v, false
	}
	return q.popLocked(0), true
}

// Remove deletes and returns the first queued item (in heap order, not
// priority order) for which match returns true. It reports ok=false
// when nothing matches. The consumer side is unaffected: a concurrent
// Pop simply never sees the removed item.
func (q *Queue[T]) Remove(match func(T) bool) (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i := range q.heap {
		if match(q.heap[i].v) {
			return q.popLocked(i), true
		}
	}
	return v, false
}

// Close stops Push (ErrClosed) and lets Pop drain the remaining items
// before reporting ok=false. Safe to call more than once.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.nonEmpty.Broadcast()
}

// less orders the heap: higher priority first, then lower sequence
// (earlier Push) within a class.
func (q *Queue[T]) less(i, j int) bool {
	if q.heap[i].pri != q.heap[j].pri {
		return q.heap[i].pri > q.heap[j].pri
	}
	return q.heap[i].seq < q.heap[j].seq
}

// popLocked removes and returns the value at heap index i; the caller
// holds q.mu.
func (q *Queue[T]) popLocked(i int) T {
	v := q.heap[i].v
	last := len(q.heap) - 1
	q.heap[i] = q.heap[last]
	var zero entry[T]
	q.heap[last] = zero // drop the reference for the GC
	q.heap = q.heap[:last]
	if i < last {
		q.siftDown(i)
		q.siftUp(i)
	}
	return v
}

func (q *Queue[T]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *Queue[T]) siftDown(i int) {
	n := len(q.heap)
	for {
		best := i
		if l := 2*i + 1; l < n && q.less(l, best) {
			best = l
		}
		if r := 2*i + 2; r < n && q.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		q.heap[i], q.heap[best] = q.heap[best], q.heap[i]
		i = best
	}
}
