// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its experiment end to
// end (workload generation, parameter sweep, baseline, measurement) in
// fast mode and reports the experiment's headline metrics via
// b.ReportMetric, so `go test -bench=.` reproduces the whole evaluation
// and prints the shape-defining numbers next to the timings.
package eccspec_test

import (
	"testing"

	"eccspec/internal/experiments"
)

// benchOpts are the shared benchmark options. Fast mode shortens the
// measurement windows ~10x; the shapes (who wins, by what factor) are
// preserved.
var benchOpts = experiments.Options{Seed: 42, Fast: true}

// runExperiment executes one registered experiment b.N times, reporting
// the requested metrics from the final run.
func runExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = e.Run(benchOpts)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	for _, m := range metrics {
		b.ReportMetric(res.Metric(m), m)
	}
}

// BenchmarkFig1 regenerates Figure 1: lowest safe Vdd per core at the
// 2.53 GHz and 340 MHz operating points.
func BenchmarkFig1(b *testing.B) {
	runExperiment(b, "fig1", "avg_rel_high", "avg_rel_low", "spread_rel_low")
}

// BenchmarkFig2 regenerates Figure 2: error-free and correctable-error
// voltage ranges per core; the paper's ~4x range ratio.
func BenchmarkFig2(b *testing.B) {
	runExperiment(b, "fig2", "range_ratio", "corr_range_low_v")
}

// BenchmarkFig3 regenerates Figure 3: average correctable errors vs
// speculation range at both operating points.
func BenchmarkFig3(b *testing.B) {
	runExperiment(b, "fig3", "error_free_range_v", "peak_ratio")
}

// BenchmarkFig4 regenerates Figure 4: per-core error counts and types
// during a load run at the lowest safe voltages.
func BenchmarkFig4(b *testing.B) {
	runExperiment(b, "fig4", "cores_with_errors", "total_errors_5min")
}

// BenchmarkTab1 regenerates Table I (system configuration printout).
func BenchmarkTab1(b *testing.B) {
	runExperiment(b, "tab1", "cores", "domains")
}

// BenchmarkTab2 regenerates Table II (benchmark inventory).
func BenchmarkTab2(b *testing.B) {
	runExperiment(b, "tab2", "benchmarks")
}

// BenchmarkFig10 regenerates Figure 10: per-core average voltages under
// hardware speculation across the four suites (paper: 18% average).
func BenchmarkFig10(b *testing.B) {
	runExperiment(b, "fig10", "avg_reduction", "min_reduction", "max_reduction")
}

// BenchmarkFig11 regenerates Figure 11: relative total power (paper:
// 33% average savings).
func BenchmarkFig11(b *testing.B) {
	runExperiment(b, "fig11", "avg_power_savings")
}

// BenchmarkFig12 regenerates Figure 12: the mcf->crafty adaptation trace
// with the error rate held inside the control band.
func BenchmarkFig12(b *testing.B) {
	runExperiment(b, "fig12", "in_band_fraction")
}

// BenchmarkFig13 regenerates Figure 13: per-line error probability vs
// voltage for cores with different profiles.
func BenchmarkFig13(b *testing.B) {
	runExperiment(b, "fig13", "ramp_min_mv", "ramp_max_mv", "v50_spread_v")
}

// BenchmarkFig14 regenerates Figure 14: adaptation to the 30 s on/off
// stress kernel with the main core idle and under SPECfp.
func BenchmarkFig14(b *testing.B) {
	runExperiment(b, "fig14", "swing_idle_v", "swing_specfp_v")
}

// BenchmarkFig15 regenerates Figure 15: error count vs voltage-virus NOP
// count, peaking at the resonance-matched NOP-8 variant.
func BenchmarkFig15(b *testing.B) {
	runExperiment(b, "fig15", "peak_nop", "peak_errors")
}

// BenchmarkFig16 regenerates Figure 16: error rate vs Vdd under NOP-8,
// NOP-0 and idle auxiliary loads.
func BenchmarkFig16(b *testing.B) {
	runExperiment(b, "fig16", "mean_rate_nop8", "mean_rate_nop0", "mean_rate_idle")
}

// BenchmarkFig17 regenerates Figure 17: energy of hardware vs software
// speculation relative to the nominal baseline.
func BenchmarkFig17(b *testing.B) {
	runExperiment(b, "fig17", "hw_relative_energy", "sw_relative_energy")
}

// BenchmarkFig18 regenerates Figure 18: energy vs Vdd for both
// techniques, including the software curve's divergence.
func BenchmarkFig18(b *testing.B) {
	runExperiment(b, "fig18", "hw_min_energy_rel", "sw_divergence")
}

// BenchmarkRetention regenerates the §V-E access-vs-retention fault
// characterization.
func BenchmarkRetention(b *testing.B) {
	runExperiment(b, "retention", "retention_errors", "access_errors")
}

// BenchmarkAging regenerates the §III-D aging/recalibration study.
func BenchmarkAging(b *testing.B) {
	runExperiment(b, "aging", "onset_drift_v")
}

// BenchmarkTemp regenerates the §III-D temperature-insensitivity check.
func BenchmarkTemp(b *testing.B) {
	runExperiment(b, "temp", "max_delta")
}

// BenchmarkMethodology regenerates the §IV-A methodology validation:
// hardware monitors vs the firmware self-test approximation.
func BenchmarkMethodology(b *testing.B) {
	runExperiment(b, "methodology", "max_target_diff_v", "fw_energy_penalty")
}

// BenchmarkCompare regenerates the §VI related-work comparison: CPM,
// the firmware ECC baseline, the paper's hardware monitors, and Razor.
func BenchmarkCompare(b *testing.B) {
	runExperiment(b, "compare", "reduction_cpm", "reduction_ecc-hardware", "reduction_razor")
}

// BenchmarkAblateBand sweeps the controller's error-rate band.
func BenchmarkAblateBand(b *testing.B) {
	runExperiment(b, "ablate-band", "reduction_gain_widest", "crashes_total")
}

// BenchmarkAblateRails sweeps the rail-sharing granularity.
func BenchmarkAblateRails(b *testing.B) {
	runExperiment(b, "ablate-rails", "reduction_per1", "reduction_per8")
}

// BenchmarkAblateStep sweeps the regulator step size.
func BenchmarkAblateStep(b *testing.B) {
	runExperiment(b, "ablate-step", "inband_step25", "inband_step200")
}

// BenchmarkAblateProbeRate sweeps the monitor probe rate.
func BenchmarkAblateProbeRate(b *testing.B) {
	runExperiment(b, "ablate-proberate", "stddev_mv_rate5", "stddev_mv_rate500")
}

// BenchmarkFreqScale sweeps the production frequency range (§II-A):
// speculation benefit vs operating frequency.
func BenchmarkFreqScale(b *testing.B) {
	runExperiment(b, "freqscale", "reduction_mhz340", "reduction_mhz1000")
}

// BenchmarkUncoreSpec regenerates the uncore-speculation extension:
// driving the uncore rail from the L3's weak lines.
func BenchmarkUncoreSpec(b *testing.B) {
	runExperiment(b, "uncorespec", "uncore_reduction", "extra_power_savings")
}

// BenchmarkFanSpeed regenerates the §III-D fan-slowdown temperature
// excursion on the two-socket blade model.
func BenchmarkFanSpeed(b *testing.B) {
	runExperiment(b, "fanspeed", "temp_rise_c", "max_shift_v")
}

// BenchmarkValidate regenerates the statistical-vs-functional error
// model cross-check.
func BenchmarkValidate(b *testing.B) {
	runExperiment(b, "validate", "worst_ratio")
}

// BenchmarkSoak regenerates the §I reliability soak: several chips under
// back-to-back workloads with crash and corruption counting.
func BenchmarkSoak(b *testing.B) {
	runExperiment(b, "soak", "crashes", "corrupted")
}

// BenchmarkPareto regenerates the energy-performance frontier extension.
func BenchmarkPareto(b *testing.B) {
	runExperiment(b, "pareto", "iso_energy_perf_gain")
}
